"""Merge shard run-logs from a multi-host sweep into one JSONL run-log.

Usage::

    python -m repro.merge out.jsonl shard0.jsonl shard1.jsonl ...

Each host runs its stripe of the grid with the executor's
``shard=(i, n_shards)`` knob and streams completed records to its own
checkpoint; this entry point folds the shard logs into one run-log holding
the same records an unsharded run would have produced (deduplicated by
record identity, later shards overriding earlier ones, shard-concatenation
order).  The merged log feeds ``DPBench.run(..., checkpoint=...,
resume=True)`` — which reassembles canonical grid order itself — or
``ResultSet.from_jsonl`` directly.
"""

from __future__ import annotations

import argparse
import sys

from .core.results import merge_run_logs


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.merge",
        description="Merge shard run-logs into one JSONL run-log.")
    parser.add_argument("output", help="path of the merged run-log to write")
    parser.add_argument("inputs", nargs="+",
                        help="shard run-logs, in shard order")
    args = parser.parse_args(argv)
    count = merge_run_logs(args.output, args.inputs)
    print(f"merged {len(args.inputs)} shard logs into {args.output} "
          f"({count} entries)")
    return 0


if __name__ == "__main__":                       # pragma: no cover - CLI shim
    sys.exit(main())
