"""Counters for the online release service.

Serving a DP release is free post-processing, so the only operational
questions are throughput and cache behaviour.  :class:`ServiceStats` keeps
the service-level counters (queries answered, point vs batch split, releases
published, queries/sec since start); the cache keeps its own hit/miss/
eviction counters (:class:`repro.serve.cache.CacheStats`) and the service
merges both into one snapshot.
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass

__all__ = ["ServiceStats", "StatsSnapshot"]


@dataclass(frozen=True)
class StatsSnapshot:
    """Point-in-time view of the service counters."""

    queries: int            #: individual queries answered (batch rows count each)
    point_queries: int      #: single-rectangle calls
    batch_queries: int      #: batched calls (one per request, however large)
    releases: int           #: releases published (re-releases included)
    uptime_seconds: float   #: seconds since the service was constructed
    qps: float              #: queries / uptime

    def as_dict(self) -> dict:
        return asdict(self)


class ServiceStats:
    """Thread-safe service counters with an injectable clock.

    ``clock`` is any zero-argument callable returning seconds (defaults to
    :func:`time.monotonic`); tests inject a fake clock to pin qps and TTL
    behaviour deterministically.
    """

    def __init__(self, clock=time.monotonic):
        self._clock = clock
        self._lock = threading.Lock()
        self._started = clock()
        self._queries = 0
        self._point_queries = 0
        self._batch_queries = 0
        self._releases = 0

    def record_point(self) -> None:
        with self._lock:
            self._queries += 1
            self._point_queries += 1

    def record_batch(self, n_queries: int) -> None:
        with self._lock:
            self._queries += int(n_queries)
            self._batch_queries += 1

    def record_release(self) -> None:
        with self._lock:
            self._releases += 1

    @property
    def queries(self) -> int:
        with self._lock:
            return self._queries

    def snapshot(self) -> StatsSnapshot:
        with self._lock:
            elapsed = max(self._clock() - self._started, 1e-12)
            return StatsSnapshot(
                queries=self._queries,
                point_queries=self._point_queries,
                batch_queries=self._batch_queries,
                releases=self._releases,
                uptime_seconds=elapsed,
                qps=self._queries / elapsed,
            )
