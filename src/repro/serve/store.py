"""Versioned storage of published releases.

A :class:`Release` is an immutable released histogram plus the structures
that make querying it cheap: the precomputed prefix-sum cube, so any 1-D
range / 2-D rectangle sum is O(2^d) table lookups, and the
:class:`~repro.workload.linops.QueryMatrix` batch path for bulk clients.
The :class:`ReleaseStore` publishes releases under monotonically increasing
versions — the version is what keys the result cache, so answers computed
against an old release can never be served after a re-release.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from ..core.plan import ReleaseMetadata
from ..workload.linops import QueryMatrix
from ..workload.prefix_sum import PrefixSum
from ..workload.rangequery import Workload

__all__ = ["Release", "ReleaseStore"]


@dataclass
class Release:
    """A published private histogram, ready to be queried forever.

    The histogram is frozen (a read-only copy) and its summed-area table is
    built once at construction; every answer afterwards is pure
    post-processing of the stored noisy counts — no further privacy cost,
    no per-request O(n) work.
    """

    histogram: np.ndarray
    metadata: ReleaseMetadata
    version: int = 0
    prefix: PrefixSum = field(init=False, repr=False)

    def __post_init__(self):
        histogram = np.array(self.histogram, dtype=float)
        histogram.setflags(write=False)
        self.histogram = histogram
        self.prefix = PrefixSum(histogram)

    @property
    def domain_shape(self) -> tuple[int, ...]:
        return self.histogram.shape

    # -- answering ----------------------------------------------------------------
    def answer(self, lo: tuple[int, ...], hi: tuple[int, ...]) -> float:
        """One inclusive range/rectangle sum — O(2^d) table lookups."""
        return self.prefix.range_sum(lo, hi)

    def answer_batch(self, los: np.ndarray, his: np.ndarray) -> np.ndarray:
        """A batch of rectangle sums through the ``QueryMatrix`` matvec path.

        Building the operator validates the batch (in-bounds, lo <= hi); the
        application itself is O(q) lookups against the precomputed cube, so
        the answers are bitwise-identical to ``QueryMatrix.matvec`` of the
        released histogram.
        """
        return QueryMatrix(los, his, self.domain_shape).matvec(self.prefix)

    def answer_workload(self, workload: Workload) -> np.ndarray:
        """Every query of a :class:`Workload`, through its cached operator."""
        if workload.domain_shape != self.domain_shape:
            raise ValueError(
                f"workload domain {workload.domain_shape} does not match "
                f"release domain {self.domain_shape}")
        return workload.operator.matvec(self.prefix)


class ReleaseStore:
    """Thread-safe holder of the current release and the publish history."""

    def __init__(self):
        self._lock = threading.Lock()
        self._release: Release | None = None
        self._version = 0
        self._history: list[ReleaseMetadata] = []

    def publish(self, release: Release) -> Release:
        """Make ``release`` current under the next version number."""
        with self._lock:
            self._version += 1
            release.version = self._version
            self._release = release
            self._history.append(release.metadata)
        return release

    def current(self) -> Release:
        with self._lock:
            release = self._release
        if release is None:
            raise RuntimeError(
                "no release published yet — call ReleaseService.release() first")
        return release

    @property
    def version(self) -> int:
        """Version of the current release (0 before the first publish)."""
        with self._lock:
            return self._version

    @property
    def history(self) -> list[ReleaseMetadata]:
        """Metadata of every release ever published, oldest first."""
        return list(self._history)
