"""The online release service.

The whole point of a DP histogram release is that it is post-processing-free:
once an algorithm has spent its epsilon, any number of range queries can be
answered from the reconstruction forever at zero additional privacy cost.
:class:`ReleaseService` packages that as a long-lived serving layer:

* **release once** — run a registered algorithm (resolved by name through the
  algorithm registry) on the data, stamp the result with its
  :class:`~repro.core.plan.ReleaseMetadata` (true ``epsilon_spent`` and
  measurement count for plan algorithms) and publish it under a fresh version;
* **query forever** — a point query is O(2^d) lookups in the precomputed
  prefix-sum cube; a batch of rectangles goes through the
  :class:`~repro.workload.linops.QueryMatrix` matvec path against the same
  cube; a whole :class:`~repro.workload.rangequery.Workload` reuses its cached
  operator;
* **cache in front** — every request is normalized to a canonical key
  (version-prefixed, so re-releases can never serve stale answers), answered
  from a bounded TTL + LRU :class:`~repro.serve.cache.QueryCache`, and counted
  by :class:`~repro.serve.stats.ServiceStats`.

Every path returns exactly ``QueryMatrix.matvec`` of the released histogram,
bitwise — caching and prefix-table reuse are pure implementation details.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..algorithms.base import Algorithm, PlanAlgorithm
from ..core.plan import ReleaseMetadata
from ..core.registry import make_algorithm
from ..workload.rangequery import Workload
from .cache import MISSING, QueryCache
from .stats import ServiceStats
from .store import Release, ReleaseStore

__all__ = ["ReleaseService"]


def _as_corner(value, ndim: int) -> tuple[int, ...]:
    """Canonicalise one query corner: scalars become 1-tuples, everything is
    coerced to plain ints so equal queries always map to equal cache keys."""
    if np.ndim(value) == 0:
        value = (value,)
    corner = tuple(int(v) for v in value)
    if len(corner) != ndim:
        raise ValueError(
            f"corner {corner} has {len(corner)} coordinates, domain has {ndim}")
    return corner


def _as_corner_array(values, ndim: int) -> np.ndarray:
    """Canonicalise a batch of corners to a contiguous ``(q, ndim)`` array."""
    array = np.ascontiguousarray(np.atleast_2d(np.asarray(values, dtype=np.intp)))
    if array.ndim != 2 or array.shape[1] != ndim:
        raise ValueError(
            f"corner batch must have shape (q, {ndim}), got {array.shape}")
    return array


class ReleaseService:
    """Long-lived query answering over a private release.

    Parameters
    ----------
    algorithm:
        A registered algorithm name (resolved through
        :func:`repro.core.registry.make_algorithm`) or an
        :class:`~repro.algorithms.base.Algorithm` instance.
    epsilon:
        Privacy budget spent per release (re-releases spend it again).
    workload:
        Optional target workload handed to workload-aware algorithms at
        release time.
    cache_size, ttl:
        Result-cache bound and expiry; ``cache_size=0`` disables caching,
        ``ttl=None`` disables expiry.
    clock:
        Injectable time source shared by the cache and the stats counters.
    """

    def __init__(
        self,
        algorithm: str | Algorithm,
        epsilon: float,
        workload: Workload | None = None,
        *,
        cache_size: int = 4096,
        ttl: float | None = None,
        clock=time.monotonic,
    ):
        if isinstance(algorithm, str):
            algorithm = make_algorithm(algorithm)
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self._algorithm = algorithm
        self._epsilon = float(epsilon)
        self._workload = workload
        self._cache = QueryCache(maxsize=cache_size, ttl=ttl, clock=clock)
        self._stats = ServiceStats(clock=clock)
        self._store = ReleaseStore()

    # -- the privacy-spending stage ----------------------------------------------
    def release(
        self,
        data: np.ndarray,
        rng: np.random.Generator | int | None = None,
        epsilon: float | None = None,
    ) -> Release:
        """Run the algorithm once on ``data`` and publish the result.

        This is the only call that touches the true data or spends privacy
        budget.  Re-releasing (fresh data, fresh noise) bumps the version and
        invalidates every cached answer; queries issued afterwards are
        answered from the new histogram.

        For plan algorithms the private stages are run explicitly
        (``plan_and_measure`` then ``infer`` — bitwise-identical to ``run``,
        as pinned by the registry-wide post-processing test), so the metadata
        records the true budget spent and the number of noisy measurements
        backing the release.
        """
        epsilon = self._epsilon if epsilon is None else float(epsilon)
        algorithm = self._algorithm
        if isinstance(algorithm, PlanAlgorithm):
            plan, measurements = algorithm.plan_and_measure(
                data, epsilon, rng=rng, workload=self._workload)
            histogram = np.asarray(algorithm.infer(measurements, plan), dtype=float)
            spent = float(measurements.epsilon_spent)
            n_measurements = int(measurements.measured_mask.sum())
        else:
            histogram = algorithm.run(data, epsilon,
                                      workload=self._workload, rng=rng)
            spent = epsilon
            n_measurements = 0
        metadata = ReleaseMetadata(
            algorithm=algorithm.name,
            epsilon=epsilon,
            epsilon_spent=spent,
            domain_shape=tuple(histogram.shape),
            n_measurements=n_measurements,
        )
        release = self._store.publish(Release(histogram, metadata))
        self._cache.invalidate()
        self._stats.record_release()
        return release

    # -- the free query paths ------------------------------------------------------
    @property
    def current_release(self) -> Release:
        """The release queries are currently answered from."""
        return self._store.current()

    @property
    def version(self) -> int:
        return self._store.version

    @property
    def history(self) -> list[ReleaseMetadata]:
        return self._store.history

    def query(self, lo, hi) -> float:
        """One inclusive range/rectangle sum (cached; O(2^d) lookups on miss).

        1-D corners may be plain ints: ``service.query(100, 200)``.
        """
        release = self._store.current()
        ndim = len(release.domain_shape)
        lo = _as_corner(lo, ndim)
        hi = _as_corner(hi, ndim)
        key = (release.version, "point", lo, hi)
        value = self._cache.get(key)
        if value is MISSING:
            value = release.answer(lo, hi)
            self._cache.put(key, value)
        self._stats.record_point()
        return value

    def query_batch(self, los, his) -> np.ndarray:
        """A batch of rectangle sums through ``QueryMatrix.matvec``.

        ``los``/``his`` are ``(q, ndim)`` corner arrays (a bare length-q
        vector is accepted for 1-D domains).  The returned array is
        read-only: cache hits share one stored array across callers.
        """
        release = self._store.current()
        ndim = len(release.domain_shape)
        if ndim == 1:
            los = np.reshape(np.asarray(los, dtype=np.intp), (-1, 1))
            his = np.reshape(np.asarray(his, dtype=np.intp), (-1, 1))
        los = _as_corner_array(los, ndim)
        his = _as_corner_array(his, ndim)
        key = (release.version, "batch", los.shape[0],
               los.tobytes(), his.tobytes())
        answers = self._cache.get(key)
        if answers is MISSING:
            answers = release.answer_batch(los, his)
            answers.setflags(write=False)
            self._cache.put(key, answers)
        self._stats.record_batch(los.shape[0])
        return answers

    def query_workload(self, workload: Workload) -> np.ndarray:
        """Every query of a workload, through its cached sparse operator."""
        release = self._store.current()
        operator = workload.operator
        key = (release.version, "workload", workload.name, len(workload),
               operator.los.tobytes(), operator.his.tobytes())
        answers = self._cache.get(key)
        if answers is MISSING:
            answers = release.answer_workload(workload)
            answers.setflags(write=False)
            self._cache.put(key, answers)
        self._stats.record_batch(len(workload))
        return answers

    def warm(self, queries: Sequence[tuple]) -> int:
        """Pre-answer ``(lo, hi)`` pairs into the cache; returns the count."""
        for lo, hi in queries:
            self.query(lo, hi)
        return len(queries)

    # -- operations ----------------------------------------------------------------
    def invalidate_cache(self) -> None:
        """Explicitly drop every cached answer (stats counters survive)."""
        self._cache.invalidate()

    @property
    def cache(self) -> QueryCache:
        return self._cache

    def stats(self) -> dict:
        """One merged snapshot: service counters + cache counters."""
        merged = self._stats.snapshot().as_dict()
        merged["cache"] = self._cache.stats().as_dict()
        merged["version"] = self._store.version
        return merged
