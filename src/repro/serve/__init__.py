"""repro.serve: a long-lived query-answering service over private releases.

A DP release is post-processing-free — once an algorithm has spent its
epsilon, the noisy histogram can be queried forever at zero additional
privacy cost.  This package exploits exactly that:

* :class:`ReleaseService` — run a registered algorithm once, then answer any
  number of 1-D range / 2-D rectangle queries (single, batched, or whole
  workloads) from the release;
* :class:`Release` / :class:`ReleaseStore` — the versioned published
  histogram with its precomputed prefix-sum cube (point queries are O(2^d)
  table lookups; batches ride the ``QueryMatrix.matvec`` path);
* :class:`QueryCache` — the keyed result cache in front (normalize-query ->
  key -> answer) with TTL, LRU bounds, invalidation-on-re-release and
  hit/miss/eviction counters;
* :class:`ServiceStats` — throughput and usage counters.

Quick start::

    from repro.serve import ReleaseService

    service = ReleaseService("DAWA", epsilon=0.1, workload=workload)
    service.release(dataset.counts, rng=0)      # the only privacy-spending call
    service.query(100, 200)                     # single range, cached
    service.query_batch(los, his)               # bulk rectangles, one matvec
    service.stats()                             # qps, hit rate, evictions, ...
"""

from .cache import CacheStats, QueryCache
from .service import ReleaseService
from .stats import ServiceStats, StatsSnapshot
from .store import Release, ReleaseStore

__all__ = [
    "CacheStats",
    "QueryCache",
    "Release",
    "ReleaseService",
    "ReleaseStore",
    "ServiceStats",
    "StatsSnapshot",
]
