"""Keyed result cache for the online release service.

The serving pattern is normalize-query -> key -> cached answer: the service
canonicalises every request (corner tuples for a point query, corner bytes
for a batch) and prefixes the key with the release version, so a re-release
can never serve a stale answer even before the explicit invalidation runs.

The cache itself is a plain TTL + LRU map: entries expire ``ttl`` seconds
after insertion (lazily, on lookup), the least-recently-used entry is evicted
once ``maxsize`` is reached, and every interesting event (hit, miss,
expiration, eviction, invalidation) is counted for the stats endpoint.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import asdict, dataclass

__all__ = ["CacheStats", "QueryCache"]

#: Sentinel distinguishing "not cached" from a cached falsy answer (0.0).
MISSING = object()


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time view of the cache counters."""

    hits: int
    misses: int
    evictions: int        #: entries dropped by the LRU size bound
    expirations: int      #: entries dropped because their TTL lapsed
    invalidations: int    #: whole-cache clears (one per re-release)
    insertions: int
    size: int
    maxsize: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict:
        return {**asdict(self), "lookups": self.lookups, "hit_rate": self.hit_rate}


class QueryCache:
    """Bounded TTL + LRU map from normalized query keys to answers.

    Parameters
    ----------
    maxsize:
        Maximum number of cached answers; the least-recently-used entry is
        evicted when a new answer would exceed it.  ``0`` disables caching
        (every lookup is a miss, nothing is stored).
    ttl:
        Seconds an entry stays valid after insertion; ``None`` means no
        expiry.  Expiry is lazy: an expired entry is dropped (and counted)
        when it is next looked up, or swept in bulk by :meth:`purge_expired`.
    clock:
        Zero-argument callable returning seconds (injectable for tests).

    All operations are O(1) under one lock, so the cache is safe to share
    between serving threads.
    """

    def __init__(self, maxsize: int = 4096, ttl: float | None = None,
                 clock=time.monotonic):
        if maxsize < 0:
            raise ValueError(f"maxsize must be non-negative, got {maxsize}")
        if ttl is not None and ttl <= 0:
            raise ValueError(f"ttl must be positive (or None), got {ttl}")
        self._maxsize = int(maxsize)
        self._ttl = ttl
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: OrderedDict = OrderedDict()   # key -> (expires_at, value)
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._expirations = 0
        self._invalidations = 0
        self._insertions = 0

    def get(self, key):
        """The cached answer for ``key``, or the :data:`MISSING` sentinel."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return MISSING
            expires_at, value = entry
            if expires_at is not None and self._clock() >= expires_at:
                del self._entries[key]
                self._expirations += 1
                self._misses += 1
                return MISSING
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key, value) -> None:
        """Cache ``value`` under ``key``, evicting LRU entries as needed."""
        if self._maxsize == 0:
            return
        expires_at = None if self._ttl is None else self._clock() + self._ttl
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (expires_at, value)
            self._insertions += 1
            while len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1

    def invalidate(self) -> None:
        """Drop every cached answer (called by the service on re-release)."""
        with self._lock:
            self._entries.clear()
            self._invalidations += 1

    def purge_expired(self) -> int:
        """Eagerly drop every expired entry; returns how many were dropped."""
        if self._ttl is None:
            return 0
        now = self._clock()
        with self._lock:
            stale = [key for key, (expires_at, _) in self._entries.items()
                     if expires_at is not None and now >= expires_at]
            for key in stale:
                del self._entries[key]
            self._expirations += len(stale)
            return len(stale)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def maxsize(self) -> int:
        return self._maxsize

    @property
    def ttl(self) -> float | None:
        return self._ttl

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                expirations=self._expirations,
                invalidations=self._invalidations,
                insertions=self._insertions,
                size=len(self._entries),
                maxsize=self._maxsize,
            )
