"""Minimal hand-rolled SVG line plots for the bench snapshots.

The container deliberately ships without matplotlib, so the scaling figures
are emitted as plain SVG: log-log line plots with power-of-two/decade ticks,
one polyline per series.  The output is deterministic (no timestamps, no
random ids) so committed snapshots diff cleanly.
"""

from __future__ import annotations

import math
from pathlib import Path

__all__ = ["line_plot"]

_COLORS = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"]

_WIDTH, _HEIGHT = 720, 460
_MARGIN_L, _MARGIN_R, _MARGIN_T, _MARGIN_B = 80, 160, 48, 56


def _log_ticks(lo: float, hi: float, base: float) -> list[float]:
    first = math.floor(math.log(lo, base))
    last = math.ceil(math.log(hi, base))
    return [base ** e for e in range(first, last + 1)]


def _fmt(value: float) -> str:
    if value >= 1024 and math.log2(value).is_integer():
        return f"2^{int(math.log2(value))}"
    if value >= 1:
        return f"{value:g}"
    return f"{value:.3g}"


def line_plot(
    path: str | Path,
    series: dict[str, list[tuple[float, float]]],
    title: str,
    xlabel: str,
    ylabel: str,
    x_base: float = 2.0,
    y_base: float = 10.0,
) -> Path:
    """Write a log-log line plot of ``{name: [(x, y), ...]}`` to ``path``."""
    points = [p for pts in series.values() for p in pts if p[1] > 0]
    if not points:
        raise ValueError("nothing to plot")
    x_lo = min(p[0] for p in points)
    x_hi = max(p[0] for p in points)
    y_lo = min(p[1] for p in points)
    y_hi = max(p[1] for p in points)
    x_ticks = _log_ticks(x_lo, x_hi, x_base)
    y_ticks = _log_ticks(y_lo, y_hi, y_base)
    x_min, x_max = math.log(x_ticks[0]), math.log(x_ticks[-1])
    y_min, y_max = math.log(y_ticks[0]), math.log(y_ticks[-1])
    plot_w = _WIDTH - _MARGIN_L - _MARGIN_R
    plot_h = _HEIGHT - _MARGIN_T - _MARGIN_B

    def sx(x: float) -> float:
        if x_max == x_min:
            return _MARGIN_L + plot_w / 2
        return _MARGIN_L + (math.log(x) - x_min) / (x_max - x_min) * plot_w

    def sy(y: float) -> float:
        if y_max == y_min:
            return _MARGIN_T + plot_h / 2
        return _MARGIN_T + plot_h - (math.log(y) - y_min) / (y_max - y_min) * plot_h

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
        f'height="{_HEIGHT}" viewBox="0 0 {_WIDTH} {_HEIGHT}" '
        f'font-family="monospace" font-size="12">',
        f'<rect width="{_WIDTH}" height="{_HEIGHT}" fill="white"/>',
        f'<text x="{_WIDTH / 2:.1f}" y="24" text-anchor="middle" '
        f'font-size="14">{title}</text>',
    ]
    for tick in x_ticks:
        x = sx(tick)
        parts.append(f'<line x1="{x:.1f}" y1="{_MARGIN_T}" x2="{x:.1f}" '
                     f'y2="{_MARGIN_T + plot_h}" stroke="#dddddd"/>')
        parts.append(f'<text x="{x:.1f}" y="{_MARGIN_T + plot_h + 18}" '
                     f'text-anchor="middle">{_fmt(tick)}</text>')
    for tick in y_ticks:
        y = sy(tick)
        parts.append(f'<line x1="{_MARGIN_L}" y1="{y:.1f}" '
                     f'x2="{_MARGIN_L + plot_w}" y2="{y:.1f}" stroke="#dddddd"/>')
        parts.append(f'<text x="{_MARGIN_L - 8}" y="{y + 4:.1f}" '
                     f'text-anchor="end">{_fmt(tick)}</text>')
    parts.append(f'<rect x="{_MARGIN_L}" y="{_MARGIN_T}" width="{plot_w}" '
                 f'height="{plot_h}" fill="none" stroke="#333333"/>')
    parts.append(f'<text x="{_MARGIN_L + plot_w / 2:.1f}" '
                 f'y="{_HEIGHT - 12}" text-anchor="middle">{xlabel}</text>')
    parts.append(f'<text x="20" y="{_MARGIN_T + plot_h / 2:.1f}" '
                 f'text-anchor="middle" transform="rotate(-90 20 '
                 f'{_MARGIN_T + plot_h / 2:.1f})">{ylabel}</text>')
    for i, (name, pts) in enumerate(series.items()):
        color = _COLORS[i % len(_COLORS)]
        pts = sorted(p for p in pts if p[1] > 0)
        coords = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in pts)
        parts.append(f'<polyline points="{coords}" fill="none" '
                     f'stroke="{color}" stroke-width="2"/>')
        for x, y in pts:
            parts.append(f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="3" '
                         f'fill="{color}"/>')
        ly = _MARGIN_T + 14 + 18 * i
        lx = _MARGIN_L + plot_w + 12
        parts.append(f'<line x1="{lx}" y1="{ly - 4}" x2="{lx + 22}" '
                     f'y2="{ly - 4}" stroke="{color}" stroke-width="2"/>')
        parts.append(f'<text x="{lx + 28}" y="{ly}">{name}</text>')
    parts.append("</svg>")
    path = Path(path)
    path.write_text("\n".join(parts) + "\n", encoding="utf8")
    return path
