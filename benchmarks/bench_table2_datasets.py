"""Table 2: overview of the 27 benchmark datasets.

Regenerates the dataset table (name, original scale, % zero counts at the
maximum domain size) from the synthetic dataset substrate and compares the
realised sparsity against the paper's documented value.
"""

from repro.data import dataset_overview

from _shared import format_table, report, run_once


def build_table2():
    rows = []
    for row in dataset_overview():
        rows.append({
            "dataset": row["dataset"],
            "dim": f"{row['dimension']}D",
            "original_scale": f"{row['original_scale']:,}",
            "paper_zero_%": f"{100 * row['paper_zero_fraction']:.2f}",
            "repro_zero_%": f"{100 * row['zero_fraction']:.2f}",
            "prior_work": "yes" if row["previously_used"] else "new",
        })
    return rows


def test_table2_datasets(benchmark):
    rows = run_once(benchmark, build_table2)
    report("table2_datasets", "Table 2: dataset overview", format_table(rows))
    assert len(rows) == 27


if __name__ == "__main__":
    print(format_table(build_table2()))
