"""Pytest configuration for the benchmark suite.

Ensures the benchmarks directory is importable (for ``_shared``) regardless of
how pytest was invoked.
"""

import sys
from pathlib import Path

BENCH_DIR = str(Path(__file__).resolve().parent)
if BENCH_DIR not in sys.path:
    sys.path.insert(0, BENCH_DIR)


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "large_domain: 16M-cell end-to-end legs (run with DPBENCH_LARGE=1)")
