"""Findings 6 and 7 (Section 7.3): free-parameter sensitivity and the benefit
of the DPBench tuning procedure.

* Finding 6: for MEDCOST at scale 1e5, compare the best and worst error over a
  set of parameter settings that are each optimal somewhere else — improper
  tuning can inflate error severalfold.
* Finding 7: the error ratio MWEM / MWEM* per scale; the paper reports ratios
  growing from ~1.8 at scale 1e3 to ~28 at 1e8 (the tuned number of rounds
  matters most at large scale).
"""

import numpy as np

from repro import DataGenerator, load_dataset, make_algorithm, prefix_workload
from repro import scaled_average_per_query_error
from repro.core.suite import default_domain_1d, default_scales_1d, default_repetitions, full_mode

from _shared import SEED, format_table, report, run_once

EPSILON = 0.1


def _mean_error(algorithm, x, workload, trials, rng):
    truth = workload.evaluate(x)
    errors = []
    for _ in range(trials):
        estimate = algorithm.run(x, EPSILON, workload=workload, rng=rng)
        errors.append(scaled_average_per_query_error(truth, workload.evaluate(estimate), x.sum()))
    return float(np.mean(errors))


def build_sensitivity_table():
    """Finding 6: error spread of parameter settings on MEDCOST at scale 1e5."""
    rng = np.random.default_rng(SEED)
    domain = default_domain_1d()
    _, trials = default_repetitions()
    workload = prefix_workload(domain[0])
    x = DataGenerator(load_dataset("MEDCOST")).generate(10 ** 5, domain, rng).counts

    candidate_settings = {
        "MWEM": [{"rounds": r} for r in (2, 10, 30, 60, 100)],
        "AHP": [{"rho": rho, "eta": eta} for rho in (0.25, 0.5, 0.85) for eta in (0.2, 0.35, 0.5)],
        "DAWA": [{"rho": rho} for rho in (0.1, 0.25, 0.5, 0.75)],
    }
    rows = []
    for name, settings in candidate_settings.items():
        errors = {}
        for params in settings:
            algorithm = make_algorithm(name, **params)
            key = ", ".join(f"{k}={v}" for k, v in params.items())
            errors[key] = _mean_error(algorithm, x, workload, trials, rng)
        best_key = min(errors, key=errors.get)
        worst_key = max(errors, key=errors.get)
        rows.append({
            "algorithm": name,
            "best_setting": best_key,
            "best_error": errors[best_key],
            "worst_setting": worst_key,
            "worst_error": errors[worst_key],
            "worst/best": errors[worst_key] / errors[best_key],
        })
    return rows


def build_mwem_ratio_table():
    """Finding 7: MWEM / MWEM* error ratio as a function of scale."""
    rng = np.random.default_rng(SEED + 1)
    domain = default_domain_1d()
    samples, trials = default_repetitions()
    workload = prefix_workload(domain[0])
    scales = default_scales_1d() if not full_mode() else (10 ** 3, 10 ** 4, 10 ** 5, 10 ** 6, 10 ** 7)
    datasets = ["ADULT", "MEDCOST", "SEARCH"] if not full_mode() \
        else ["ADULT", "MEDCOST", "SEARCH", "INCOME"]

    rows = []
    for scale in scales:
        ratios = []
        for name in datasets:
            generator = DataGenerator(load_dataset(name))
            for _ in range(samples):
                x = generator.generate(scale, domain, rng).counts
                error_fixed = _mean_error(make_algorithm("MWEM"), x, workload, trials, rng)
                error_tuned = _mean_error(make_algorithm("MWEM*"), x, workload, trials, rng)
                if error_tuned > 0:
                    ratios.append(error_fixed / error_tuned)
        rows.append({
            "scale": scale,
            "paper_ratio": {10 ** 3: 1.80, 10 ** 4: 0.95, 10 ** 5: 1.06,
                            10 ** 6: 5.17, 10 ** 7: 12.0, 10 ** 8: 27.9}.get(scale, float("nan")),
            "repro_ratio_MWEM/MWEM*": float(np.mean(ratios)),
        })
    return rows


def test_finding6_parameter_sensitivity(benchmark):
    rows = run_once(benchmark, build_sensitivity_table)
    report("finding6_parameter_sensitivity",
           "Finding 6: error spread over parameter settings (MEDCOST, scale 1e5)",
           format_table(rows, floatfmt="{:.3g}"))
    assert all(row["worst/best"] >= 1.0 for row in rows)


def test_finding7_mwem_tuning(benchmark):
    rows = run_once(benchmark, build_mwem_ratio_table)
    report("finding7_mwem_ratio",
           "Finding 7: MWEM / MWEM* error ratio by scale",
           format_table(rows, floatfmt="{:.2f}"))
    assert rows


if __name__ == "__main__":
    print(format_table(build_sensitivity_table(), floatfmt="{:.3g}"))
    print(format_table(build_mwem_ratio_table(), floatfmt="{:.2f}"))
