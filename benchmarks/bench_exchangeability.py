"""Table 1's "Scale-Exch." column (Section 5.5, Appendix C): scale-epsilon
exchangeability.

For each algorithm, compares the scaled error at (scale, epsilon) pairs with a
common product.  Exchangeable algorithms produce (statistically) equal errors;
SF — the one algorithm the paper proves non-exchangeable — is included for
contrast, although the paper notes it empirically behaves exchangeably.
"""

import numpy as np

from repro import exchangeability_ratio, make_algorithm
from repro.core.suite import full_mode
from repro.data import power_law_shape

from _shared import SEED, format_table, report, run_once

ALGORITHMS = ["Identity", "Hb", "GreedyH", "Uniform", "MWEM", "DAWA", "AHP", "PHP", "EFPA", "SF"]


def build_exchangeability_table():
    domain = 256 if not full_mode() else 1024
    trials = 10 if not full_mode() else 30
    shape = power_law_shape(domain, alpha=1.2, rng=SEED)
    product = 2000.0
    pairs = [(int(product / 1.0), 1.0), (int(product / 0.1), 0.1)]
    rows = []
    for name in ALGORITHMS:
        algorithm = make_algorithm(name)
        expected = algorithm.properties.scale_epsilon_exchangeable
        result = exchangeability_ratio(algorithm, shape, pairs, n_trials=trials, rng=SEED)
        errors = list(result["errors"].values())
        rows.append({
            "algorithm": name,
            "paper_exchangeable": expected,
            "log10_error_lowscale_higheps": float(np.log10(errors[0])),
            "log10_error_highscale_loweps": float(np.log10(errors[1])),
            "max_over_min_ratio": result["max_over_min"],
        })
    return rows


def test_exchangeability(benchmark):
    rows = run_once(benchmark, build_exchangeability_table)
    report("exchangeability", "Table 1: scale-epsilon exchangeability",
           format_table(rows, floatfmt="{:.2f}"))
    # Every algorithm the paper proves exchangeable should show a modest ratio.
    for row in rows:
        if row["paper_exchangeable"] and row["algorithm"] != "SF":
            assert row["max_over_min_ratio"] < 2.5


if __name__ == "__main__":
    print(format_table(build_exchangeability_table(), floatfmt="{:.2f}"))
