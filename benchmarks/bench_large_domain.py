"""Macro-benchmark: million-cell domains end-to-end.

The paper's studies stop at domain 4096 (1-D) and 64 x 64 (2-D); this bench
pushes the release pipeline to 2**20 cells in both layouts and records how
the wall-clock scales.  Three PR-7 kernels carry the load
(:mod:`repro.core.kernels`):

* ``l1_partition_core`` — DAWA's survivor scan, dispatchable to numba;
* ``tree_two_pass`` — the streaming tree GLS (fixed ``TREE_BLOCK`` row
  blocks, so a 2**20-leaf solve never materialises a level-sized dense
  intermediate);
* ``batched_laplace`` — plan noise in one generator call per scale group.

Gates:

* kernel-vs-reference **bitwise parity** (always): the dispatched DAWA
  partition equals ``l1_partition_reference`` and the scalar tree sources
  equal the numpy backend;
* **>= 2x** DAWA partition speedup at n = 2**17 noise-dominated under the
  numba backend (skipped cleanly when numba is absent — the container
  default runs the numpy reference everywhere).

Run with ``python -m pytest benchmarks/bench_large_domain.py -q``.
``DPBENCH_SMOKE=1`` drops the 2**20 rows and shrinks the 2-D side so CI
finishes in seconds; the committed snapshot under ``benchmarks/results/``
is produced by a full run.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from _shared import format_table, kernel_backend, report, run_once
from repro import make_algorithm
from repro.algorithms.dawa import l1_partition, l1_partition_reference
from repro.core import kernels
from repro.core.kernels import numba_available, use_backend

SMOKE = os.environ.get("DPBENCH_SMOKE", "0") not in ("", "0")

SIZES_1D = [2**14, 2**17] if SMOKE else [2**14, 2**17, 2**20]
SIDE_2D = 256 if SMOKE else 1024
ALGORITHMS_1D = ["Identity", "H", "GreedyH", "DAWA"]
ALGORITHMS_2D = ["Identity", "GreedyH", "DAWA"]  # H is 1-D only (Table 1)
EPSILON = 0.1


def _counts(n: int, rng: np.random.Generator) -> np.ndarray:
    """Sparse skewed counts at ~10 units per cell — large-domain regime."""
    shape = rng.dirichlet(np.full(n, 0.05))
    return rng.multinomial(10 * n, shape).astype(float)


def _time_once(fn) -> tuple[float, object]:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def test_scaling_table(benchmark):
    """One row per (domain, algorithm): wall-clock of a full private release.

    Workload-aware stages see ``workload=None`` (their default hierarchies) —
    materialising a million-query workload object would swamp the timing with
    python object construction, and the kernels under test run either way.
    """

    def study():
        rows = []
        for n in SIZES_1D:
            data = _counts(n, np.random.default_rng(20160626))
            for name in ALGORITHMS_1D:
                algorithm = make_algorithm(name)
                seconds, estimate = _time_once(lambda: algorithm.run(
                    data, EPSILON, rng=np.random.default_rng(7)))
                assert estimate.shape == data.shape
                assert np.all(np.isfinite(estimate))
                rows.append({"domain": f"1-D n=2^{n.bit_length() - 1}",
                             "algorithm": name, "seconds": seconds})
        side = SIDE_2D
        data = _counts(side * side,
                       np.random.default_rng(20160626)).reshape(side, side)
        for name in ALGORITHMS_2D:
            algorithm = make_algorithm(name)
            seconds, estimate = _time_once(lambda: algorithm.run(
                data, EPSILON, rng=np.random.default_rng(7)))
            assert estimate.shape == data.shape
            assert np.all(np.isfinite(estimate))
            rows.append({"domain": f"2-D {side}x{side}", "algorithm": name,
                         "seconds": seconds})
        for row in rows:
            row["backend"] = kernel_backend()
        return rows

    rows = run_once(benchmark, study)
    sizes = ", ".join(f"2^{n.bit_length() - 1}" for n in SIZES_1D)
    report("bench_large_domain",
           f"Large-domain scaling (1-D n in {{{sizes}}}, 2-D {SIDE_2D}x"
           f"{SIDE_2D}, eps={EPSILON}, backend={kernel_backend()})",
           format_table(rows, floatfmt="{:.3f}"))


def test_kernel_reference_parity(benchmark):
    """The dispatched kernels are bitwise-interchangeable with the references
    on large-domain inputs (both backends when numba is present)."""

    def study():
        n = 2**14
        rng = np.random.default_rng(3)
        noisy = _counts(n, rng) + rng.laplace(0.0, 10.0, n)
        reference = l1_partition_reference(noisy, bucket_penalty=10.0)
        backends = ["numpy"] + (["numba"] if numba_available() else [])
        for backend in backends:
            with use_backend(backend):
                assert l1_partition(noisy, 10.0) == reference, \
                    f"{backend} partition diverged from the reference"

        groups = []
        for d in range(14):  # complete binary tree, heap-ordered
            parents = np.arange(2**d - 1, 2**(d + 1) - 1, dtype=np.intp)
            groups.append((parents,
                           np.stack([2 * parents + 1, 2 * parents + 2], axis=1)))
        n_nodes = 2**15 - 1
        own_values = rng.normal(0.0, 50.0, n_nodes)
        own_vars = rng.uniform(0.5, 8.0, n_nodes)
        ref = kernels._tree_two_pass_numpy(groups, own_values, own_vars)
        got = kernels._tree_two_pass_numba_driver(groups, own_values, own_vars)
        assert got.tobytes() == ref.tobytes(), \
            "scalar tree sources diverged from the numpy backend"
        return len(backends)

    backends_checked = run_once(benchmark, study)
    assert backends_checked >= 1


def test_dawa_partition_numba_speedup(benchmark):
    """The compiled survivor scan must hold >= 2x over the numpy reference at
    n = 2**17 in the noise-dominated regime (where pruning barely bites and
    the scan is the whole cost)."""
    if not numba_available():
        pytest.skip("numba not installed; no compiled backend to gate")

    def study():
        n = 2**17
        rng = np.random.default_rng(20160626)
        x = rng.integers(0, 3, n).astype(float)
        noisy = x + rng.laplace(0.0, 50.0, n)
        with use_backend("numba"):
            l1_partition(noisy[: 2**12], 10.0)  # JIT warm-up
        with use_backend("numpy"):
            t_numpy, b_numpy = _time_once(lambda: l1_partition(noisy, 10.0))
        with use_backend("numba"):
            t_numba, b_numba = _time_once(lambda: l1_partition(noisy, 10.0))
        assert b_numba == b_numpy, "backends disagreed on the partition"
        rows = [
            {"backend": "numpy", "seconds": t_numpy, "speedup": 1.0},
            {"backend": "numba", "seconds": t_numba,
             "speedup": t_numpy / t_numba},
        ]
        return rows, t_numpy / t_numba

    rows, speedup = run_once(benchmark, study)
    report("bench_dawa_numba_speedup",
           "DAWA L1 partition backends (n=2^17, noise-dominated)",
           format_table(rows, floatfmt="{:.4f}"))
    assert speedup >= 2.0, \
        f"numba partition core only {speedup:.2f}x over the numpy reference"
