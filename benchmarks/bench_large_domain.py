"""Macro-benchmark: million-cell domains end-to-end.

The paper's studies stop at domain 4096 (1-D) and 64 x 64 (2-D); this bench
pushes the release pipeline to 2**20 cells in both layouts and records how
the wall-clock scales.  Three PR-7 kernels carry the load
(:mod:`repro.core.kernels`):

* ``l1_partition_core`` — DAWA's survivor scan, dispatchable to numba;
* ``tree_two_pass`` — the streaming tree GLS (fixed ``TREE_BLOCK`` row
  blocks, so a 2**20-leaf solve never materialises a level-sized dense
  intermediate);
* ``batched_laplace`` — plan noise in one generator call per scale group.

Gates:

* kernel-vs-reference **bitwise parity** (always): the dispatched DAWA
  partition equals ``l1_partition_reference`` and the scalar tree sources
  equal the numpy backend;
* **>= 2x** DAWA partition speedup at n = 2**17 noise-dominated under the
  numba backend (skipped cleanly when numba is absent — the container
  default runs the numpy reference everywhere).

Run with ``python -m pytest benchmarks/bench_large_domain.py -q``.
``DPBENCH_SMOKE=1`` drops the 2**20 rows and shrinks the 2-D side so CI
finishes in seconds; the committed snapshot under ``benchmarks/results/``
is produced by a full run.  Alongside the text table the bench emits
``bench_large_domain.json`` (rows plus host info) and a hand-rolled SVG
scaling figure (the container has no matplotlib).

``DPBENCH_LARGE=1`` additionally runs the 16M-cell leg (2-D 4096 x 4096
releases plus the 1-D 2**24 twin for H), enabled by the flyweight
array-backed tree: construction of the ~22M-node 4096^2 hierarchy is pure
array code, so end-to-end releases at this scale are allocation-bound, not
Python-object-bound.  The leg asserts a peak-RSS ceiling; under
``DPBENCH_SMOKE`` it shrinks to the Identity + H pair CI can afford.
"""

from __future__ import annotations

import gc
import json
import os
import platform
import time
import tracemalloc

import numpy as np
import pytest

from _shared import RESULTS_DIR, format_table, kernel_backend, report, run_once
from _svgplot import line_plot
from repro import make_algorithm
from repro.algorithms.dawa import l1_partition, l1_partition_reference
from repro.core import kernels
from repro.core.kernels import numba_available, use_backend

SMOKE = os.environ.get("DPBENCH_SMOKE", "0") not in ("", "0")
LARGE = os.environ.get("DPBENCH_LARGE", "0") not in ("", "0")

SIZES_1D = [2**14, 2**17] if SMOKE else [2**14, 2**17, 2**20]
SIDE_2D = 256 if SMOKE else 1024
ALGORITHMS_1D = ["Identity", "H", "GreedyH", "DAWA"]
ALGORITHMS_2D = ["Identity", "GreedyH", "DAWA"]  # H is 1-D only (Table 1)
EPSILON = 0.1

#: 16M-cell leg (DPBENCH_LARGE=1): the paper-scale stress domains.
SIDE_LARGE = 4096
N_1D_LARGE = 2**24          # same cell count as 4096^2, for the 1-D-only H
#: Per-release peak-memory ceiling for the hierarchy-backed 16M-cell rows
#: (Identity/H/GreedyH): the flyweight tree keeps each release
#: allocation-bound at a few GB; regressions to per-node object storage
#: would blow straight through this.  DAWA is exempt — its L1-partition
#: dynamic program carries its own O(n log n) footprint (~60 GB at 2^24,
#: see the committed snapshot) that dwarfs the tree either way.
MAX_RSS_BYTES = 12 * 2**30


def _host_info() -> dict:
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpus": os.cpu_count(),
    }


def _write_json(name: str, payload: dict) -> None:
    if os.environ.get("DPBENCH_NO_WRITE", "0") in ("", "0"):
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf8")


def _counts(n: int, rng: np.random.Generator) -> np.ndarray:
    """Sparse skewed counts at ~10 units per cell — large-domain regime."""
    shape = rng.dirichlet(np.full(n, 0.05))
    return rng.multinomial(10 * n, shape).astype(float)


def _time_once(fn) -> tuple[float, object]:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _vm_hwm_mb() -> float | None:
    try:
        with open("/proc/self/status", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) / 1024.0
    except OSError:
        pass
    return None


def _reset_vm_hwm() -> bool:
    try:
        with open("/proc/self/clear_refs", "w", encoding="ascii") as fh:
            fh.write("5")
        return True
    except OSError:
        return False


def _measured_run(fn) -> tuple[float, float, object]:
    """Wall-clock seconds, peak-memory MB and result of one call.

    The timed region must stay untraced: tracemalloc's allocator hook
    inflates allocation-heavy rows (DAWA's partition scan runs ~4x slower
    under it), which would poison before/after comparisons against earlier
    snapshots.  On Linux the peak is the growth of the process RSS
    high-water mark over the run — reset just before (``/proc/self/
    clear_refs``), read back after — with zero overhead on the timed code.
    Elsewhere the peak comes from a second, traced run whose timing is
    discarded.
    """
    gc.collect()
    if _reset_vm_hwm():
        base = _vm_hwm_mb() or 0.0      # == current RSS after the reset
        seconds, result = _time_once(fn)
        return seconds, max((_vm_hwm_mb() or 0.0) - base, 0.0), result
    seconds, result = _time_once(fn)
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return seconds, peak / 2**20, result


def _release_row(domain: str, cells: int, name: str, data: np.ndarray) -> dict:
    algorithm = make_algorithm(name)
    seconds, peak_mb, estimate = _measured_run(
        lambda: algorithm.run(data, EPSILON, rng=np.random.default_rng(7)))
    assert estimate.shape == data.shape
    assert np.all(np.isfinite(estimate))
    return {"domain": domain, "cells": cells, "algorithm": name,
            "seconds": seconds, "peak_mb": peak_mb,
            "backend": kernel_backend()}


def _scaling_plot(rows: list[dict]) -> None:
    """Time-vs-n figure over the 1-D sweep, one series per algorithm."""
    series: dict[str, list[tuple[float, float]]] = {}
    for row in rows:
        if row["domain"].startswith("1-D"):
            series.setdefault(row["algorithm"], []).append(
                (row["cells"], row["seconds"]))
    if os.environ.get("DPBENCH_NO_WRITE", "0") in ("", "0") and series:
        RESULTS_DIR.mkdir(exist_ok=True)
        line_plot(RESULTS_DIR / "bench_large_domain_scaling.svg", series,
                  title=f"End-to-end release time vs domain size "
                        f"(eps={EPSILON}, backend={kernel_backend()})",
                  xlabel="domain size n (cells)", ylabel="seconds")


def test_scaling_table(benchmark):
    """One row per (domain, algorithm): wall-clock of a full private release.

    Workload-aware stages see ``workload=None`` (their default hierarchies) —
    materialising a million-query workload object would swamp the timing with
    python object construction, and the kernels under test run either way.
    """

    def study():
        rows = []
        for n in SIZES_1D:
            data = _counts(n, np.random.default_rng(20160626))
            for name in ALGORITHMS_1D:
                rows.append(_release_row(f"1-D n=2^{n.bit_length() - 1}",
                                         n, name, data))
        side = SIDE_2D
        data = _counts(side * side,
                       np.random.default_rng(20160626)).reshape(side, side)
        for name in ALGORITHMS_2D:
            rows.append(_release_row(f"2-D {side}x{side}", side * side,
                                     name, data))
        return rows

    rows = run_once(benchmark, study)
    sizes = ", ".join(f"2^{n.bit_length() - 1}" for n in SIZES_1D)
    report("bench_large_domain",
           f"Large-domain scaling (1-D n in {{{sizes}}}, 2-D {SIDE_2D}x"
           f"{SIDE_2D}, eps={EPSILON}, backend={kernel_backend()})",
           format_table(rows, columns=["domain", "algorithm", "seconds",
                                       "peak_mb", "backend"],
                        floatfmt="{:.3f}"))
    _write_json("bench_large_domain", {
        "host": _host_info(),
        "epsilon": EPSILON,
        "backend": kernel_backend(),
        "peak_metric": "rss_hwm_delta_mb",
        "notes": {
            # Satellite record: the flyweight rewrite removed GreedyH's 1-D
            # anomaly (prefix workloads and tree usage counts are now pure
            # array code; nothing materialises 2^20 query objects).  The
            # "before" figures are the prior committed snapshot.
            "greedyh_1d_2pow20_seconds_before": 64.945,
            "h_1d_2pow20_seconds_before": 42.176,
        },
        "rows": rows,
    })
    _scaling_plot(rows)


@pytest.mark.large_domain
def test_sixteen_million_cell_release(benchmark):
    """End-to-end private releases at 16M cells on the flyweight tree.

    2-D 4096 x 4096 for the 2-D algorithms plus 1-D n = 2**24 for H (the
    1-D-only hierarchy of Table 1, at the same cell count).  Gated behind
    ``DPBENCH_LARGE=1``; under ``DPBENCH_SMOKE`` only the Identity + H pair
    runs (the CI leg).  Asserts every hierarchy-backed release stays under
    the per-row peak-memory ceiling — the flyweight structure-of-arrays
    layout keeps ~22M tree nodes at a few hundred MB instead of tens of GB
    of per-node objects.  (DAWA is exempt: see ``MAX_RSS_BYTES``.)
    """
    if not LARGE:
        pytest.skip("16M-cell leg runs only with DPBENCH_LARGE=1")

    def study():
        rows = []
        side = SIDE_LARGE
        names_2d = ["Identity"] if SMOKE else ALGORITHMS_2D
        data = _counts(side * side,
                       np.random.default_rng(20160626)).reshape(side, side)
        for name in names_2d:
            rows.append(_release_row(f"2-D {side}x{side}", side * side,
                                     name, data))
        data = _counts(N_1D_LARGE, np.random.default_rng(20160626))
        rows.append(_release_row(f"1-D n=2^{N_1D_LARGE.bit_length() - 1}",
                                 N_1D_LARGE, "H", data))
        return rows

    rows = run_once(benchmark, study)
    report("bench_large_domain_4096",
           f"16M-cell releases (2-D {SIDE_LARGE}x{SIDE_LARGE} + 1-D 2^24, "
           f"eps={EPSILON}, backend={kernel_backend()})",
           format_table(rows, columns=["domain", "algorithm", "seconds",
                                       "peak_mb", "backend"],
                        floatfmt="{:.3f}"))
    _write_json("bench_large_domain_4096", {
        "host": _host_info(),
        "epsilon": EPSILON,
        "backend": kernel_backend(),
        "peak_metric": "rss_hwm_delta_mb",
        "rows": rows,
    })
    for row in rows:
        if row["algorithm"] == "DAWA":
            continue
        peak = row["peak_mb"] * 2**20
        assert peak < MAX_RSS_BYTES, (
            f"{row['algorithm']} on {row['domain']}: peak "
            f"{peak / 2**30:.2f} GiB exceeds the "
            f"{MAX_RSS_BYTES / 2**30:.0f} GiB per-release ceiling")


def test_kernel_reference_parity(benchmark):
    """The dispatched kernels are bitwise-interchangeable with the references
    on large-domain inputs (both backends when numba is present)."""

    def study():
        n = 2**14
        rng = np.random.default_rng(3)
        noisy = _counts(n, rng) + rng.laplace(0.0, 10.0, n)
        reference = l1_partition_reference(noisy, bucket_penalty=10.0)
        backends = ["numpy"] + (["numba"] if numba_available() else [])
        for backend in backends:
            with use_backend(backend):
                assert l1_partition(noisy, 10.0) == reference, \
                    f"{backend} partition diverged from the reference"

        groups = []
        for d in range(14):  # complete binary tree, heap-ordered
            parents = np.arange(2**d - 1, 2**(d + 1) - 1, dtype=np.intp)
            groups.append((parents,
                           np.stack([2 * parents + 1, 2 * parents + 2], axis=1)))
        n_nodes = 2**15 - 1
        own_values = rng.normal(0.0, 50.0, n_nodes)
        own_vars = rng.uniform(0.5, 8.0, n_nodes)
        ref = kernels._tree_two_pass_numpy(groups, own_values, own_vars)
        got = kernels._tree_two_pass_numba_driver(groups, own_values, own_vars)
        assert got.tobytes() == ref.tobytes(), \
            "scalar tree sources diverged from the numpy backend"
        return len(backends)

    backends_checked = run_once(benchmark, study)
    assert backends_checked >= 1


def test_dawa_partition_numba_speedup(benchmark):
    """The compiled survivor scan must hold >= 2x over the numpy reference at
    n = 2**17 in the noise-dominated regime (where pruning barely bites and
    the scan is the whole cost)."""
    if not numba_available():
        pytest.skip("numba not installed; no compiled backend to gate")

    def study():
        n = 2**17
        rng = np.random.default_rng(20160626)
        x = rng.integers(0, 3, n).astype(float)
        noisy = x + rng.laplace(0.0, 50.0, n)
        with use_backend("numba"):
            l1_partition(noisy[: 2**12], 10.0)  # JIT warm-up
        with use_backend("numpy"):
            t_numpy, b_numpy = _time_once(lambda: l1_partition(noisy, 10.0))
        with use_backend("numba"):
            t_numba, b_numba = _time_once(lambda: l1_partition(noisy, 10.0))
        assert b_numba == b_numpy, "backends disagreed on the partition"
        rows = [
            {"backend": "numpy", "seconds": t_numpy, "speedup": 1.0},
            {"backend": "numba", "seconds": t_numba,
             "speedup": t_numpy / t_numba},
        ]
        return rows, t_numpy / t_numba

    rows, speedup = run_once(benchmark, study)
    report("bench_dawa_numba_speedup",
           "DAWA L1 partition backends (n=2^17, noise-dominated)",
           format_table(rows, floatfmt="{:.4f}"))
    assert speedup >= 2.0, \
        f"numba partition core only {speedup:.2f}x over the numpy reference"
