"""Finding 5 (regret) and Finding 10 (comparison to baselines).

* Regret: the geometric-mean ratio between each algorithm's error and the
  per-setting oracle error.  The paper reports DAWA as the lowest-regret 1-D
  algorithm (1.32) with Hb next (1.51), and DAWA (1.73) ahead of AGrid (1.90)
  in 2-D.
* Baselines: the fraction of datasets, per scale, on which each algorithm
  beats IDENTITY and UNIFORM.
"""

from repro import baseline_comparison, regret

from _shared import format_table, report, results_1d, results_2d, run_once


def build_regret():
    rows_1d = [{"task": "1D", "algorithm": name, "regret": value}
               for name, value in sorted(regret(results_1d()).items(), key=lambda kv: kv[1])]
    rows_2d = [{"task": "2D", "algorithm": name, "regret": value}
               for name, value in sorted(regret(results_2d()).items(), key=lambda kv: kv[1])]
    return rows_1d + rows_2d


def build_baseline_comparison():
    rows = []
    for task, results in (("1D", results_1d()), ("2D", results_2d())):
        for row in baseline_comparison(results):
            rows.append({"task": task, **row})
    return rows


def test_regret(benchmark):
    rows = run_once(benchmark, build_regret)
    report("regret", "Finding 5: regret relative to the per-setting oracle",
           format_table(rows, floatfmt="{:.2f}"))
    assert rows


def test_baseline_comparison(benchmark):
    rows = run_once(benchmark, build_baseline_comparison)
    report("baseline_comparison",
           "Finding 10: fraction of datasets beating the Identity/Uniform baselines",
           format_table(rows, floatfmt="{:.2f}"))
    assert rows


if __name__ == "__main__":
    print(format_table(build_regret(), floatfmt="{:.2f}"))
    print(format_table(build_baseline_comparison(), floatfmt="{:.2f}"))
