"""Figure 1a: 1-D error versus scale (domain 4096, Prefix workload, eps=0.1).

For every algorithm and every scale, reports the per-dataset scaled L2 error
range (min / mean / max over datasets, i.e. the spread of black dots and the
white diamond of the figure), plus how the best data-dependent algorithm
compares to the best data-independent one (Findings 1 and 2).
"""

import numpy as np

from repro.core import DATA_INDEPENDENT

from _shared import format_table, report, results_1d, run_once


def build_figure1a():
    results = results_1d().successful()
    rows = []
    for scale in results.scales():
        subset = results.filter(scale=scale)
        for algorithm in subset.algorithms():
            per_dataset = [r.summary.mean for r in subset.filter(algorithm=algorithm)]
            rows.append({
                "scale": scale,
                "algorithm": algorithm,
                "log10_mean_error": float(np.log10(np.mean(per_dataset))),
                "log10_min": float(np.log10(np.min(per_dataset))),
                "log10_max": float(np.log10(np.max(per_dataset))),
                "datasets": len(per_dataset),
            })
    return rows


def summarize_findings(rows):
    lines = []
    for scale in sorted({row["scale"] for row in rows}):
        at_scale = [row for row in rows if row["scale"] == scale]
        independent = [r for r in at_scale if r["algorithm"] in DATA_INDEPENDENT]
        dependent = [r for r in at_scale if r["algorithm"] not in DATA_INDEPENDENT]
        best_ind = min(independent, key=lambda r: r["log10_mean_error"])
        best_dep = min(dependent, key=lambda r: r["log10_mean_error"])
        advantage = 10 ** (best_ind["log10_mean_error"] - best_dep["log10_mean_error"])
        lines.append(
            f"scale=1e{int(np.log10(scale))}: best data-independent = "
            f"{best_ind['algorithm']}, best data-dependent = {best_dep['algorithm']}, "
            f"data-dependent advantage = {advantage:.2f}x"
        )
    return "\n".join(lines)


def test_fig1a_error_vs_scale_1d(benchmark):
    rows = run_once(benchmark, build_figure1a)
    text = format_table(rows, floatfmt="{:.2f}")
    text += "\n\nFindings 1-2 summary (who wins at each scale):\n" + summarize_findings(rows)
    report("fig1a_1d_scale", "Figure 1a: 1-D error vs scale (eps=0.1, Prefix)", text)
    assert rows, "the 1-D study produced no results"


if __name__ == "__main__":
    rows = build_figure1a()
    print(format_table(rows, floatfmt="{:.2f}"))
    print(summarize_findings(rows))
