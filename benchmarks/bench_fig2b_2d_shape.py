"""Figure 2b: 2-D error by dataset shape (scale 1e4, eps=0.1).

Reports the per-dataset error of the baselines, Hb, DAWA and AGrid — the
algorithms shown in the paper's Figure 2b — at the smallest 2-D scale.
"""

import numpy as np

from _shared import format_table, report, results_2d, run_once

FIG2B_ALGORITHMS = ["Uniform", "Identity", "Hb", "DAWA", "AGrid"]


def build_figure2b():
    results = results_2d().successful()
    smallest_scale = min(results.scales())
    subset = results.filter(scale=smallest_scale)
    rows = []
    for dataset in subset.datasets():
        row = {"dataset": dataset, "scale": smallest_scale}
        best_name, best_value = None, np.inf
        for algorithm in FIG2B_ALGORITHMS:
            records = subset.filter(dataset=dataset, algorithm=algorithm).records
            if not records:
                continue
            value = records[0].summary.mean
            row[algorithm] = float(np.log10(value))
            if value < best_value:
                best_name, best_value = algorithm, value
        row["winner"] = best_name
        rows.append(row)
    return rows


def test_fig2b_error_by_shape_2d(benchmark):
    rows = run_once(benchmark, build_figure2b)
    report("fig2b_2d_shape", "Figure 2b: 2-D error by shape (smallest scale)",
           format_table(rows, floatfmt="{:.2f}"))
    assert len(rows) == len(results_2d().successful().datasets())


if __name__ == "__main__":
    print(format_table(build_figure2b(), floatfmt="{:.2f}"))
