"""Shared infrastructure for the DPBench reproduction benches.

Every bench regenerates one table or figure of the paper.  The two big
experiment sweeps (the 1-D and 2-D studies behind Figures 1-2 and Tables 3a/3b)
are executed once per pytest session and cached here, so the per-bench cost is
aggregation and printing.

Grid resolution is controlled by ``repro.core.suite``: the default is a
laptop-scale grid (domain 1024 / 64x64, 3 scales, 2 data samples x 3 trials);
set ``DPBENCH_FULL=1`` to run the paper's full settings.

Execution is controlled by three environment variables understood by
:func:`study_executor` / :func:`study_checkpoint`:

* ``DPBENCH_WORKERS=N`` (N > 1) fans each study out over an N-process
  ``ParallelExecutor`` — per-job seeding makes the results bitwise-identical
  to a serial run;
* ``DPBENCH_CHECKPOINT=1`` streams completed records to
  ``benchmarks/results/run_{1d,2d}.jsonl``;
* ``DPBENCH_RESUME=1`` (implies checkpointing) skips the cells already in
  the run-log, so a killed ``DPBENCH_FULL=1`` sweep picks up where it left
  off.

In addition ``DPBENCH_KERNEL=numpy|numba`` selects the hot-kernel backend
(see :mod:`repro.core.kernels`); :func:`kernel_backend` reports the backend
actually in effect, and every ``RunRecord`` written by the studies carries it
under ``extra["kernel_backend"]``.

Each bench prints its rows and also writes them to ``benchmarks/results/``.
"""

from __future__ import annotations

import functools
import os
from pathlib import Path

import numpy as np

from repro import ParallelExecutor, SerialExecutor, benchmark_1d, benchmark_2d
from repro.core.kernels import active_backend
from repro.core.suite import env_flag as _env_flag

#: Seed shared by every bench so the reduced grids are reproducible.
SEED = 20160626


def kernel_backend() -> str:
    """The hot-kernel backend in effect for this bench run.

    Resolves ``DPBENCH_KERNEL`` (``numpy`` | ``numba``; default auto-detect)
    through :func:`repro.core.kernels.active_backend` — benches print this so
    a results snapshot is always attributable to a backend.
    """
    return active_backend()

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def study_executor():
    """The executor the big studies run under (``DPBENCH_WORKERS``)."""
    workers = int(os.environ.get("DPBENCH_WORKERS", "0") or 0)
    if workers > 1:
        return ParallelExecutor(workers=workers)
    return SerialExecutor()


def study_checkpoint(tag: str) -> Path | None:
    """Run-log path for one study, or None when checkpointing is off."""
    if not (_env_flag("DPBENCH_CHECKPOINT") or _env_flag("DPBENCH_RESUME")):
        return None
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR / f"run_{tag}.jsonl"


def _run_study(build, tag: str):
    return build().run(
        rng=SEED,
        executor=study_executor(),
        checkpoint=study_checkpoint(tag),
        resume=_env_flag("DPBENCH_RESUME"),
    )


@functools.lru_cache(maxsize=None)
def results_1d():
    """The 1-D study: every 1-D dataset x scale x algorithm (cached)."""
    return _run_study(benchmark_1d, "1d")


@functools.lru_cache(maxsize=None)
def results_2d():
    """The 2-D study: every 2-D dataset x scale x algorithm (cached)."""
    return _run_study(benchmark_2d, "2d")


def format_table(rows: list[dict], columns: list[str] | None = None,
                 floatfmt: str = "{:.3e}") -> str:
    """Render a list of dict rows as a fixed-width text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered: list[list[str]] = [[str(c) for c in columns]]
    for row in rows:
        line = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                line.append("nan" if np.isnan(value) else floatfmt.format(value))
            else:
                line.append(str(value))
        rendered.append(line)
    widths = [max(len(r[i]) for r in rendered) for i in range(len(columns))]
    lines = []
    for i, line in enumerate(rendered):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths)))
        if i == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def report(name: str, title: str, text: str) -> str:
    """Print a bench report and persist it under ``benchmarks/results/``."""
    banner = f"\n=== {title} ===\n{text}\n"
    print(banner)
    if os.environ.get("DPBENCH_NO_WRITE", "0") in ("", "0"):
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(f"{title}\n\n{text}\n", encoding="utf8")
    return banner


def run_once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
