"""Figure 1b: 2-D error versus scale (domain 128x128, 2000 random range
queries, eps=0.1).

Same structure as Figure 1a for the 2-D study.
"""

import numpy as np

from repro.core import DATA_INDEPENDENT

from _shared import format_table, report, results_2d, run_once


def build_figure1b():
    results = results_2d().successful()
    rows = []
    for scale in results.scales():
        subset = results.filter(scale=scale)
        for algorithm in subset.algorithms():
            per_dataset = [r.summary.mean for r in subset.filter(algorithm=algorithm)]
            rows.append({
                "scale": scale,
                "algorithm": algorithm,
                "log10_mean_error": float(np.log10(np.mean(per_dataset))),
                "log10_min": float(np.log10(np.min(per_dataset))),
                "log10_max": float(np.log10(np.max(per_dataset))),
                "datasets": len(per_dataset),
            })
    return rows


def summarize_findings(rows):
    lines = []
    for scale in sorted({row["scale"] for row in rows}):
        at_scale = [row for row in rows if row["scale"] == scale]
        independent = [r for r in at_scale if r["algorithm"] in DATA_INDEPENDENT]
        dependent = [r for r in at_scale if r["algorithm"] not in DATA_INDEPENDENT]
        best_ind = min(independent, key=lambda r: r["log10_mean_error"])
        best_dep = min(dependent, key=lambda r: r["log10_mean_error"])
        advantage = 10 ** (best_ind["log10_mean_error"] - best_dep["log10_mean_error"])
        lines.append(
            f"scale=1e{int(np.log10(scale))}: best data-independent = "
            f"{best_ind['algorithm']}, best data-dependent = {best_dep['algorithm']}, "
            f"data-dependent advantage = {advantage:.2f}x"
        )
    return "\n".join(lines)


def test_fig1b_error_vs_scale_2d(benchmark):
    rows = run_once(benchmark, build_figure1b)
    text = format_table(rows, floatfmt="{:.2f}")
    text += "\n\nFindings 1-2 summary (who wins at each scale):\n" + summarize_findings(rows)
    report("fig1b_2d_scale", "Figure 1b: 2-D error vs scale (eps=0.1, random ranges)", text)
    assert rows, "the 2-D study produced no results"


if __name__ == "__main__":
    rows = build_figure1b()
    print(format_table(rows, floatfmt="{:.2f}"))
    print(summarize_findings(rows))
