"""Throughput bench for the online release service (repro.serve).

One 1024 x 1024 release is published once; the service then answers one
million uniformly random in-bounds rectangles through each query path:

* **batch** — one ``query_batch`` call riding ``QueryMatrix.matvec`` against
  the precomputed prefix-sum cube (the bulk-client path);
* **batch, cached** — the same request again, served from the keyed result
  cache;
* **point** — per-rectangle ``query`` calls (O(2^d) table lookups each, plus
  cache bookkeeping), on a subset sized so the bench stays fast;
* **point, cached** — the same subset again, all cache hits.

Correctness is asserted the hard way before any timing is trusted: the batch
answers over the full million rectangles must agree **bitwise** with
``QueryMatrix.matvec`` of the released histogram, and the point path must
agree bitwise on its subset.

The CI gate is the queries/sec floor on the batch paths (the serving layer's
reason to exist); the point path gets a soft floor two orders of magnitude
lower, since it pays Python per-call overhead by design.

Run with ``python -m pytest benchmarks/bench_serve_throughput.py -q``.
``DPBENCH_SMOKE=1`` shrinks only the point-path subset; the 1M-rectangle
batch agreement check and its gated floor always run at full size.
"""

from __future__ import annotations

import os
import time

import numpy as np

from _shared import format_table, report, run_once
from repro import QueryMatrix
from repro.serve import ReleaseService

SMOKE = os.environ.get("DPBENCH_SMOKE", "0") not in ("", "0")

SIDE = 1024
N_RECTANGLES = 1_000_000
N_POINT = 20_000 if SMOKE else 100_000

#: CI-gated floors, queries/sec.  The batch path sustains tens of millions of
#: rectangles/sec on commodity hardware; 1M/s leaves an order-of-magnitude
#: margin for slow CI runners while still guaranteeing "a million-user
#: rectangle stream is one core-second".
BATCH_FLOOR = 1_000_000
CACHED_FLOOR = 1_000_000
POINT_FLOOR = 10_000


def _time(fn, repeats: int = 3) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_serve_throughput(benchmark):
    def study():
        rng = np.random.default_rng(20160626)
        x = rng.integers(0, 50, (SIDE, SIDE)).astype(float)

        # Cache sized to the point-path working set, so the cached-point
        # timing is a genuine all-hits pass rather than an LRU thrash.
        service = ReleaseService("Identity", epsilon=1.0, cache_size=2 * N_POINT)
        t_release, release = _time(lambda: service.release(x, rng=7), repeats=1)

        a = rng.integers(0, SIDE, (N_RECTANGLES, 2))
        b = rng.integers(0, SIDE, (N_RECTANGLES, 2))
        los, his = np.minimum(a, b), np.maximum(a, b)

        # Bitwise-exact agreement with QueryMatrix.matvec of the released
        # histogram over the full million rectangles, before any timing.
        reference = QueryMatrix(los, his, (SIDE, SIDE)).matvec(release.histogram)
        assert service.query_batch(los, his).tobytes() == reference.tobytes(), \
            "serve batch answers diverged from QueryMatrix.matvec"

        # Uncached batch path: invalidate between repeats so every run pays
        # the full QueryMatrix + prefix-lookup cost.
        def batch_uncached():
            service.invalidate_cache()
            return service.query_batch(los, his)

        t_batch, _ = _time(batch_uncached)
        service.query_batch(los, his)                      # prime the cache
        t_cached, cached_answers = _time(lambda: service.query_batch(los, his))
        assert cached_answers.tobytes() == reference.tobytes()

        # Point path on a subset: per-query prefix lookups + cache misses,
        # then the same subset again as pure cache hits.
        subset = slice(0, N_POINT)
        point_queries = list(zip(map(tuple, los[subset]), map(tuple, his[subset])))
        service.invalidate_cache()

        def point_uncached():
            return [service.query(lo, hi) for lo, hi in point_queries]

        t_point, point_answers = _time(point_uncached, repeats=1)
        assert np.asarray(point_answers).tobytes() == \
            reference[subset].tobytes(), \
            "serve point answers diverged from QueryMatrix.matvec"
        t_point_hit, hit_answers = _time(point_uncached)   # now all cache hits
        assert np.asarray(hit_answers).tobytes() == reference[subset].tobytes()

        stats = service.stats()
        rows = [
            {"path": f"release (Identity, {SIDE}x{SIDE})", "queries": 1,
             "seconds": t_release, "qps": float("nan")},
            {"path": f"batch matvec ({N_RECTANGLES} rects)",
             "queries": N_RECTANGLES, "seconds": t_batch,
             "qps": N_RECTANGLES / t_batch},
            {"path": f"batch cached ({N_RECTANGLES} rects)",
             "queries": N_RECTANGLES, "seconds": t_cached,
             "qps": N_RECTANGLES / t_cached},
            {"path": f"point uncached ({N_POINT} rects)", "queries": N_POINT,
             "seconds": t_point, "qps": N_POINT / t_point},
            {"path": f"point cached ({N_POINT} rects)", "queries": N_POINT,
             "seconds": t_point_hit, "qps": N_POINT / t_point_hit},
        ]
        return rows, (N_RECTANGLES / t_batch, N_RECTANGLES / t_cached,
                      N_POINT / t_point, stats)

    rows, (batch_qps, cached_qps, point_qps, stats) = run_once(benchmark, study)
    cache = stats["cache"]
    summary = (f"cache: {cache['hits']} hits / {cache['lookups']} lookups "
               f"(hit rate {cache['hit_rate']:.1%}), "
               f"{cache['evictions']} evictions, "
               f"{cache['invalidations']} invalidations; "
               f"service answered {stats['queries']} queries")
    report("bench_serve_throughput",
           f"Online release service throughput ({SIDE}x{SIDE} release, "
           f"1M random rectangles, bitwise-exact vs QueryMatrix.matvec)",
           format_table(rows, floatfmt="{:,.4f}") + "\n\n" + summary)
    assert batch_qps >= BATCH_FLOOR, \
        f"batch path only {batch_qps:,.0f} rectangles/sec (floor {BATCH_FLOOR:,})"
    assert cached_qps >= CACHED_FLOOR, \
        f"cached batch path only {cached_qps:,.0f} rectangles/sec (floor {CACHED_FLOOR:,})"
    assert point_qps >= POINT_FLOOR, \
        f"point path only {point_qps:,.0f} rectangles/sec (floor {POINT_FLOOR:,})"
