"""Tables 3a and 3b: the number of datasets on which each algorithm is
competitive, per scale (Finding 5).

Competitiveness follows the paper's definition: lowest mean error, or mean
error not statistically distinguishable from the lowest (unpaired t-tests with
Bonferroni-corrected alpha).  Both the risk-neutral (mean) and risk-averse
(95th percentile) variants are reported.
"""

from repro import competitive_counts

from _shared import format_table, report, results_1d, results_2d, run_once


def _counts_to_rows(counts: dict) -> list[dict]:
    algorithms = sorted({name for per_scale in counts.values() for name in per_scale})
    rows = []
    for algorithm in algorithms:
        row = {"algorithm": algorithm}
        for scale in sorted(counts):
            row[f"scale 1e{len(str(int(scale))) - 1}"] = counts[scale].get(algorithm, 0)
        row["total"] = sum(counts[scale].get(algorithm, 0) for scale in counts)
        rows.append(row)
    rows.sort(key=lambda r: -r["total"])
    return rows


def build_table3a():
    return {
        "mean": _counts_to_rows(competitive_counts(results_1d(), measure="mean")),
        "p95": _counts_to_rows(competitive_counts(results_1d(), measure="p95")),
    }


def build_table3b():
    return {
        "mean": _counts_to_rows(competitive_counts(results_2d(), measure="mean")),
        "p95": _counts_to_rows(competitive_counts(results_2d(), measure="p95")),
    }


def test_table3a_competitive_1d(benchmark):
    tables = run_once(benchmark, build_table3a)
    text = ("Risk-neutral analyst (mean error):\n" + format_table(tables["mean"])
            + "\n\nRisk-averse analyst (95th-percentile error):\n" + format_table(tables["p95"]))
    report("table3a_competitive_1d",
           "Table 3a: datasets on which each 1-D algorithm is competitive", text)
    assert tables["mean"]


def test_table3b_competitive_2d(benchmark):
    tables = run_once(benchmark, build_table3b)
    text = ("Risk-neutral analyst (mean error):\n" + format_table(tables["mean"])
            + "\n\nRisk-averse analyst (95th-percentile error):\n" + format_table(tables["p95"]))
    report("table3b_competitive_2d",
           "Table 3b: datasets on which each 2-D algorithm is competitive", text)
    assert tables["mean"]


if __name__ == "__main__":
    for title, tables in (("Table 3a (1D)", build_table3a()), ("Table 3b (2D)", build_table3b())):
        print(title)
        print(format_table(tables["mean"]))
