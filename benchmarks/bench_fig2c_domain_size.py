"""Figure 2c: 2-D error versus domain size (Finding 4).

For two dataset shapes (ADULT-2D and BJ-CABS-E) at two scales, sweeps the 2-D
domain size and reports the error of Identity, Hb (data-independent; error
should grow with domain size) and AGrid / DAWA (data-dependent; error should
be flat or grow slowly), reproducing the panels of Figure 2c.

This bench runs its own sweep rather than the shared study because it varies
the domain size.  The reduced grid uses domains 16x16 .. 128x128; the paper's
32x32 .. 256x256 grid is used under ``DPBENCH_FULL=1``.
"""

import numpy as np

from repro import benchmark_2d
from repro.core.suite import full_mode

from _shared import SEED, format_table, report, run_once

DATASETS = ["ADULT-2D", "BJ-CABS-E"]
ALGORITHMS = ["Identity", "Hb", "AGrid", "DAWA"]


def domain_sizes():
    if full_mode():
        return [(32, 32), (64, 64), (128, 128), (256, 256)]
    return [(16, 16), (32, 32), (64, 64), (128, 128)]


def scales():
    return [10 ** 4, 10 ** 6]


def build_figure2c():
    bench = benchmark_2d(
        datasets=DATASETS,
        algorithms=ALGORITHMS,
        scales=scales(),
        domain_shapes=domain_sizes(),
        n_data_samples=1,
        n_trials=2 if not full_mode() else 10,
    )
    results = bench.run(rng=SEED).successful()
    rows = []
    for dataset in DATASETS:
        for scale in scales():
            for domain in domain_sizes():
                row = {"dataset": dataset, "scale": scale,
                       "domain": f"{domain[0]}x{domain[1]}"}
                for algorithm in ALGORITHMS:
                    records = results.filter(dataset=dataset, scale=scale,
                                             domain_shape=domain, algorithm=algorithm).records
                    if records:
                        row[algorithm] = float(np.log10(records[0].summary.mean))
                rows.append(row)
    return rows


def finding4_summary(rows):
    """Quantify how each algorithm's error moves with domain size."""
    lines = []
    for algorithm in ALGORITHMS:
        growth = []
        for dataset in DATASETS:
            for scale in scales():
                series = [row[algorithm] for row in rows
                          if row["dataset"] == dataset and row["scale"] == scale
                          and algorithm in row]
                if len(series) >= 2:
                    growth.append(series[-1] - series[0])
        if growth:
            lines.append(f"{algorithm}: mean log10-error change from smallest to largest "
                         f"domain = {np.mean(growth):+.2f}")
    return "\n".join(lines)


def test_fig2c_domain_size(benchmark):
    rows = run_once(benchmark, build_figure2c)
    text = format_table(rows, floatfmt="{:.2f}")
    text += "\n\nFinding 4 summary (error growth with domain size):\n" + finding4_summary(rows)
    report("fig2c_domain_size", "Figure 2c: 2-D error vs domain size", text)
    assert rows


if __name__ == "__main__":
    rows = build_figure2c()
    print(format_table(rows, floatfmt="{:.2f}"))
    print(finding4_summary(rows))
