"""Figure 2a: 1-D error by dataset shape (smallest scale, eps=0.1).

Reports, for every 1-D dataset at the smallest scale, the scaled error of the
baselines plus the competitive data-dependent algorithms — the content of the
per-dataset panels of Figure 2a (Finding 3: error varies strongly with shape,
and different algorithms win on different shapes).
"""

import numpy as np

from _shared import format_table, report, results_1d, run_once

#: The algorithms plotted in the paper's Figure 2a.
FIG2A_ALGORITHMS = ["Uniform", "Identity", "Hb", "DAWA", "EFPA", "MWEM", "MWEM*", "PHP"]


def build_figure2a():
    results = results_1d().successful()
    smallest_scale = min(results.scales())
    subset = results.filter(scale=smallest_scale)
    rows = []
    for dataset in subset.datasets():
        row = {"dataset": dataset, "scale": smallest_scale}
        best_name, best_value = None, np.inf
        for algorithm in FIG2A_ALGORITHMS:
            records = subset.filter(dataset=dataset, algorithm=algorithm).records
            if not records:
                continue
            value = records[0].summary.mean
            row[algorithm] = float(np.log10(value))
            if value < best_value:
                best_name, best_value = algorithm, value
        row["winner"] = best_name
        rows.append(row)
    return rows


def shape_variation_summary(rows):
    lines = []
    for algorithm in FIG2A_ALGORITHMS:
        values = [10 ** row[algorithm] for row in rows if algorithm in row]
        if not values:
            continue
        lines.append(
            f"{algorithm}: error varies {max(values) / min(values):.1f}x across dataset shapes"
        )
    winners = {}
    for row in rows:
        winners[row["winner"]] = winners.get(row["winner"], 0) + 1
    lines.append(f"distinct winners across shapes: {sorted(winners)}")
    return "\n".join(lines)


def test_fig2a_error_by_shape_1d(benchmark):
    rows = run_once(benchmark, build_figure2a)
    text = format_table(rows, floatfmt="{:.2f}")
    text += "\n\nFinding 3 summary:\n" + shape_variation_summary(rows)
    report("fig2a_1d_shape", "Figure 2a: 1-D error by shape (smallest scale)", text)
    assert len(rows) == len(results_1d().successful().datasets())


if __name__ == "__main__":
    rows = build_figure2a()
    print(format_table(rows, floatfmt="{:.2f}"))
    print(shape_variation_summary(rows))
