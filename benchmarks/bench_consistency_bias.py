"""Finding 9 and Table 1's "Consistent" column (Section 7.4, Appendix C).

Sweeps epsilon for a representative set of algorithms on a structured 1-D
dataset and reports (a) the error-versus-epsilon curve (consistent algorithms
decay, inconsistent ones flatten) and (b) a bias/variance decomposition at the
largest epsilon, showing that the residual error of MWEM, MWEM*, PHP and
Uniform is bias.
"""

import numpy as np

from repro import (
    DataGenerator,
    bias_variance_decomposition,
    load_dataset,
    make_algorithm,
    prefix_workload,
    scaled_average_per_query_error,
)
from repro.core.suite import full_mode

from _shared import SEED, format_table, report, run_once

ALGORITHMS = ["Identity", "Hb", "DAWA", "AHP*", "EFPA", "SF",
              "Uniform", "MWEM", "MWEM*", "PHP"]
#: Table 1's consistency column for the algorithms above.
EXPECTED_CONSISTENT = {
    "Identity": True, "Hb": True, "DAWA": True, "AHP*": True, "EFPA": True, "SF": True,
    "Uniform": False, "MWEM": False, "MWEM*": False, "PHP": False,
}


def _setup():
    rng = np.random.default_rng(SEED)
    domain = (512,) if not full_mode() else (4096,)
    x = DataGenerator(load_dataset("SEARCH")).generate(10 ** 5, domain, rng).counts
    workload = prefix_workload(domain[0])
    return x, workload, rng


def build_consistency_curves():
    x, workload, rng = _setup()
    epsilons = (0.1, 1.0, 10.0, 1000.0)
    trials = 3 if not full_mode() else 10
    truth = workload.evaluate(x)
    rows = []
    for name in ALGORITHMS:
        algorithm = make_algorithm(name)
        row = {"algorithm": name, "paper_consistent": EXPECTED_CONSISTENT[name]}
        for epsilon in epsilons:
            errors = []
            for _ in range(trials):
                estimate = algorithm.run(x, epsilon, workload=workload, rng=rng)
                errors.append(scaled_average_per_query_error(
                    truth, workload.evaluate(estimate), x.sum()))
            row[f"eps={epsilon}"] = float(np.log10(np.mean(errors)))
        # Empirical verdict: does error keep dropping by orders of magnitude?
        row["empirically_consistent"] = (row["eps=1000.0"] < row["eps=0.1"] - 2.0)
        rows.append(row)
    return rows


def build_bias_decomposition():
    x, workload, rng = _setup()
    trials = 8 if not full_mode() else 20
    truth = workload.evaluate(x)
    rows = []
    for name in ALGORITHMS:
        algorithm = make_algorithm(name)
        answers = []
        for _ in range(trials):
            estimate = algorithm.run(x, 100.0, workload=workload, rng=rng)
            answers.append(workload.evaluate(estimate))
        decomposition = bias_variance_decomposition(np.array(answers), truth)
        rows.append({
            "algorithm": name,
            "bias_fraction_of_mse": decomposition["bias_fraction"],
            "paper_consistent": EXPECTED_CONSISTENT[name],
        })
    return rows


def test_finding9_consistency(benchmark):
    curves = run_once(benchmark, build_consistency_curves)
    bias = build_bias_decomposition()
    text = ("Scaled log10 error vs epsilon (SEARCH shape, scale 1e5):\n"
            + format_table(curves, floatfmt="{:.2f}")
            + "\n\nBias share of MSE at eps=100 (Finding 9 — inconsistent algorithms "
              "are bias-dominated):\n"
            + format_table(bias, floatfmt="{:.2f}"))
    report("finding9_consistency_bias", "Finding 9 / Table 1: consistency and bias", text)
    # The inconsistent group must be bias-dominated at large epsilon.
    for row in bias:
        if not row["paper_consistent"]:
            assert row["bias_fraction_of_mse"] > 0.5


if __name__ == "__main__":
    print(format_table(build_consistency_curves(), floatfmt="{:.2f}"))
    print(format_table(build_bias_decomposition(), floatfmt="{:.2f}"))
