"""Micro-benchmark: dense vs sparse measurement/inference paths, plus the
workload-aware selection quality gate.

Two hot paths were rebased onto the sparse :class:`repro.QueryMatrix`
operator in the measurement/inference refactor:

* **MWEM's round loop** — the textbook implementation materialises the dense
  query matrix (answers via ``W @ x`` per round) and a dense per-query mask
  for every multiplicative-weights update; the sparse loop updates answers
  incrementally from range overlaps and touches only the chosen range.
  The pre-refactor middle ground (prefix-sum evaluation per round, dense
  masks) is also reported for context.
* **GLS inference** — consistency post-processing solved densely with
  ``np.linalg.lstsq`` versus the exact two-pass tree path and the matrix-free
  LSMR solver.
* **DAWA's L1 partition** — the stage-one dynamic program as a plain double
  loop (the cross-validated reference) versus the vectorised
  candidate-pruning path, on the input DAWA actually feeds it: noisy counts
  with a known Laplace scale.
* **the Hilbert curve builder** — the historical pure-Python ``_d2xy`` loop
  (O(n) interpreter iterations, a million at 1024 x 1024) versus the
  vectorised bit-twiddling, pinned bitwise-identical.

The selection-quality benches exercise the plan pipeline's seam: GreedyW's
greedy workload-aware measurement selection must beat Identity (and GreedyH)
on a skewed point-heavy 1-D workload at fixed epsilon, and its *native* 2-D
selection must beat both the Hilbert-span variant it replaces and GreedyH on
the paper's 64 x 64 random-range benchmark workload.

Run with ``python -m pytest benchmarks/bench_inference_speed.py -q``.
``DPBENCH_SMOKE=1`` shrinks round counts and the dense-solve domain so the
bench finishes in seconds on CI; the MWEM and DAWA domains stay at 4096
because the >= 5x speedups over their baselines are acceptance criteria.
"""

from __future__ import annotations

import os
import time

import numpy as np

from _shared import format_table, report, run_once
from repro import MWEM, prefix_workload
from repro.algorithms.hier import measure_tree
from repro.algorithms.mechanisms import exponential_mechanism, laplace_noise
from repro.algorithms.mwem import _query_mask, multiplicative_weights_update
from repro.algorithms.tree import HierarchicalTree
from repro.core.gls import solve_gls

SMOKE = os.environ.get("DPBENCH_SMOKE", "0") not in ("", "0")

MWEM_DOMAIN = 4096
MWEM_ROUNDS = 10 if SMOKE else 50
GLS_DENSE_DOMAIN = 512 if SMOKE else 1024
GLS_SPARSE_DOMAIN = 4096
DAWA_DOMAIN = 4096


def _mwem_data(n: int):
    rng = np.random.default_rng(20160626)
    x = rng.multinomial(100_000, rng.dirichlet(np.ones(n))).astype(float)
    workload = prefix_workload(n)
    workload.operator.to_sparse()          # warm the cached operator
    return x, workload


def _dense_matrix_mwem(x, epsilon, workload, rng, rounds, scale):
    """The textbook dense path: answers via the materialised query matrix."""
    matrix = workload.to_matrix()
    estimate = np.full(x.shape, scale / x.size)
    average = np.zeros(x.shape)
    true_answers = matrix @ x.ravel()
    eps_round = epsilon / rounds
    for _ in range(rounds):
        approx = matrix @ estimate.ravel()
        errors = np.abs(true_answers - approx)
        chosen = exponential_mechanism(errors, eps_round / 2.0, sensitivity=1.0, rng=rng)
        measured = true_answers[chosen] + float(laplace_noise(2.0 / eps_round, (), rng))
        mask = _query_mask(workload[chosen], x.shape)
        estimate = multiplicative_weights_update(estimate, mask, measured, scale)
        average += estimate
    return average / rounds


def _prefix_mask_mwem(x, epsilon, workload, rng, rounds, scale):
    """The pre-refactor path: prefix-sum evaluation, dense update masks."""
    estimate = np.full(x.shape, scale / x.size)
    average = np.zeros(x.shape)
    true_answers = workload.evaluate(x)
    eps_round = epsilon / rounds
    for _ in range(rounds):
        approx = workload.evaluate(estimate)
        errors = np.abs(true_answers - approx)
        chosen = exponential_mechanism(errors, eps_round / 2.0, sensitivity=1.0, rng=rng)
        measured = true_answers[chosen] + float(laplace_noise(2.0 / eps_round, (), rng))
        mask = _query_mask(workload[chosen], x.shape)
        estimate = multiplicative_weights_update(estimate, mask, measured, scale)
        average += estimate
    return average / rounds


def _time(fn, repeats: int = 3) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_mwem_sparse_vs_dense(benchmark):
    def study():
        x, workload = _mwem_data(MWEM_DOMAIN)
        scale = float(x.sum())
        epsilon = 1.0
        MWEM(rounds=2).run(x, epsilon, workload=workload, rng=0)   # warm-up

        t_dense, y_dense = _time(lambda: _dense_matrix_mwem(
            x, epsilon, workload, np.random.default_rng(7), MWEM_ROUNDS, scale), repeats=1)
        t_prefix, y_prefix = _time(lambda: _prefix_mask_mwem(
            x, epsilon, workload, np.random.default_rng(7), MWEM_ROUNDS, scale))
        t_sparse, y_sparse = _time(lambda: MWEM(rounds=MWEM_ROUNDS).run(
            x, epsilon, workload=workload, rng=np.random.default_rng(7)))

        assert np.allclose(y_sparse, y_dense, rtol=1e-8, atol=1e-8)
        assert np.allclose(y_sparse, y_prefix, rtol=1e-8, atol=1e-8)
        rows = [
            {"path": "dense matrix (W @ x per round)", "seconds": t_dense,
             "speedup": 1.0},
            {"path": "prefix eval + dense mask (pre-refactor)", "seconds": t_prefix,
             "speedup": t_dense / t_prefix},
            {"path": "sparse operator (incremental answers)", "seconds": t_sparse,
             "speedup": t_dense / t_sparse},
        ]
        return rows, t_dense / t_sparse

    rows, speedup = run_once(benchmark, study)
    report("bench_mwem_speed",
           f"MWEM round-loop paths (domain {MWEM_DOMAIN}, {MWEM_ROUNDS} rounds)",
           format_table(rows, floatfmt="{:.4f}"))
    assert speedup >= 5.0, f"sparse MWEM only {speedup:.1f}x over the dense baseline"


def test_gls_sparse_vs_dense(benchmark):
    def study():
        rows = []
        rng = np.random.default_rng(0)

        # Dense-feasible domain: all three solvers against np.linalg.lstsq.
        n = GLS_DENSE_DOMAIN
        tree = HierarchicalTree((n,), branching=2)
        x = rng.multinomial(50_000, rng.dirichlet(np.ones(n))).astype(float)
        mset = measure_tree(x, tree, np.full(tree.n_levels, 0.1), rng)

        measured = mset.measured()
        scales = 1.0 / np.sqrt(measured.variances)
        design = measured.queries.to_dense() * scales[:, None]
        target = measured.values * scales
        t_dense, y_dense = _time(
            lambda: np.linalg.lstsq(design, target, rcond=None)[0], repeats=1)
        t_tree, y_tree = _time(lambda: solve_gls(mset, method="tree"))
        t_lsmr, y_lsmr = _time(lambda: solve_gls(mset, method="lsmr"))
        t_normal, y_normal = _time(lambda: solve_gls(mset, method="normal"))
        for y in (y_tree, y_lsmr, y_normal):
            assert np.abs(y - y_dense).max() / max(1.0, np.abs(y_dense).max()) < 1e-8
        rows += [
            {"solver": f"dense lstsq (n={n})", "seconds": t_dense, "speedup": 1.0},
            {"solver": f"tree two-pass (n={n})", "seconds": t_tree,
             "speedup": t_dense / t_tree},
            {"solver": f"sparse LSMR (n={n})", "seconds": t_lsmr,
             "speedup": t_dense / t_lsmr},
            {"solver": f"sparse normal eqs (n={n})", "seconds": t_normal,
             "speedup": t_dense / t_normal},
        ]

        # Large domain: the sparse paths keep working where dense cannot.
        n = GLS_SPARSE_DOMAIN
        tree = HierarchicalTree((n,), branching=2)
        x = rng.multinomial(500_000, rng.dirichlet(np.ones(n))).astype(float)
        mset = measure_tree(x, tree, np.full(tree.n_levels, 0.1), rng)
        t_tree, y_tree = _time(lambda: solve_gls(mset, method="tree"))
        t_lsmr, y_lsmr = _time(lambda: solve_gls(mset, method="lsmr"))
        assert np.abs(y_tree - y_lsmr).max() / max(1.0, np.abs(y_tree).max()) < 1e-8
        rows += [
            {"solver": f"tree two-pass (n={n})", "seconds": t_tree, "speedup": float("nan")},
            {"solver": f"sparse LSMR (n={n})", "seconds": t_lsmr, "speedup": float("nan")},
        ]
        return rows, rows[1]["speedup"]

    rows, tree_speedup = run_once(benchmark, study)
    report("bench_gls_speed", "GLS inference paths (dense vs sparse)",
           format_table(rows, floatfmt="{:.4f}"))
    assert tree_speedup >= 5.0, \
        f"tree fast path only {tree_speedup:.1f}x over dense lstsq"


def test_dawa_partition_speed(benchmark):
    """DAWA stage-one L1 partition: vectorised pruning path vs reference loop.

    The input is what DAWA always feeds the partition search — counts
    perturbed with Laplace noise of a known scale — for a scale-100k 1-D run.
    The dominance pruning bites when the noisy data retains structure, so the
    gate is enforced at epsilon 1.0 (the top of the paper's range); the
    noise-dominated low-epsilon regime (0.05), where almost every candidate
    survives pruning and the win reduces to the cheaper exact inner loop, is
    reported alongside without a gate.
    """
    from repro.algorithms.dawa import l1_partition, l1_partition_reference

    def study():
        rng = np.random.default_rng(20160626)
        n = DAWA_DOMAIN
        x = rng.multinomial(100_000, rng.dirichlet(np.ones(n))).astype(float)
        rows, gated_speedup = [], None
        for epsilon, gated in ((1.0, True), (0.05, False)):
            eps_partition = epsilon * 0.25
            noisy = x + rng.laplace(0, 1.0 / eps_partition, n)
            penalty = 1.0 / (epsilon * 0.75)
            kwargs = {"noise_scale": 1.0 / eps_partition}
            t_loop, b_loop = _time(lambda: l1_partition_reference(noisy, penalty, **kwargs))
            t_fast, b_fast = _time(lambda: l1_partition(noisy, penalty, **kwargs),
                                   repeats=7)
            assert b_fast == b_loop, "vectorised partition diverged from the reference"
            rows += [
                {"path": f"reference double loop (eps={epsilon})", "seconds": t_loop,
                 "speedup": 1.0, "buckets": len(b_loop)},
                {"path": f"vectorised pruning DP (eps={epsilon})", "seconds": t_fast,
                 "speedup": t_loop / t_fast, "buckets": len(b_fast)},
            ]
            if gated:
                gated_speedup = t_loop / t_fast
        return rows, gated_speedup

    rows, speedup = run_once(benchmark, study)
    report("bench_dawa_speed",
           f"DAWA L1 partition paths (domain {DAWA_DOMAIN})",
           format_table(rows, floatfmt="{:.4f}"))
    assert speedup >= 5.0, \
        f"vectorised L1 partition only {speedup:.1f}x over the reference loop"


HILBERT_SIDE = 512 if SMOKE else 1024


def test_hilbert_order_speed(benchmark):
    """The vectorised Hilbert curve builder vs the pure-Python loop.

    The orderings must be bitwise-identical (the vectorised path performs the
    same integer arithmetic on the whole position vector at once), and the
    vectorised path must hold a >= 5x margin — in practice it is one to two
    orders of magnitude faster, and the margin grows with the grid side.
    """
    from repro.algorithms.hilbert import hilbert_order, hilbert_order_reference

    def study():
        side = HILBERT_SIDE
        t_ref, order_ref = _time(lambda: hilbert_order_reference(side), repeats=1)
        t_fast, order_fast = _time(lambda: hilbert_order(side), repeats=3)
        assert order_fast.tobytes() == order_ref.tobytes(), \
            "vectorised Hilbert ordering diverged from the reference"
        rows = [
            {"path": f"pure-Python _d2xy loop (side={side})", "seconds": t_ref,
             "speedup": 1.0},
            {"path": f"vectorised bit-twiddling (side={side})", "seconds": t_fast,
             "speedup": t_ref / t_fast},
        ]
        return rows, t_ref / t_fast

    rows, speedup = run_once(benchmark, study)
    report("bench_hilbert_speed",
           f"Hilbert curve construction (side {HILBERT_SIDE})",
           format_table(rows, floatfmt="{:.4f}"))
    assert speedup >= 5.0, \
        f"vectorised hilbert_order only {speedup:.1f}x over the Python loop"


SELECTION_DOMAIN = 1024
SELECTION_TRIALS = 4 if SMOKE else 10


def test_greedyw_selection_quality(benchmark):
    """GreedyW's workload-aware selection on a skewed workload.

    The workload is point-query heavy (2000 point queries) with a tail of
    300 medium random ranges — the regime where GreedyH's always-measure-
    every-level hierarchy misallocates budget.  GreedyW must achieve lower
    scaled workload error than both Identity and GreedyH at fixed epsilon;
    the margins are averaged over fixed-seed trials, so the gate is
    deterministic.
    """
    from repro import make_algorithm, scaled_average_per_query_error
    from repro.workload.rangequery import RangeQuery, Workload

    def study():
        n = SELECTION_DOMAIN
        wrng = np.random.default_rng(20160626)
        queries = [RangeQuery((int(i),), (int(i),))
                   for i in wrng.integers(0, n, 2000)]
        for _ in range(300):
            length = int(wrng.integers(100, 400))
            lo = int(wrng.integers(0, n - length))
            queries.append(RangeQuery((lo,), (lo + length - 1,)))
        workload = Workload(queries, (n,), name="skewed-points+ranges")

        drng = np.random.default_rng(7)
        scale = 100_000
        x = drng.multinomial(scale, drng.dirichlet(np.ones(n))).astype(float)
        truth = workload.evaluate(x)

        epsilon = 0.1
        rows = []
        errors = {}
        for name in ("Identity", "GreedyH", "GreedyW"):
            algorithm = make_algorithm(name)
            trial_errors = [
                scaled_average_per_query_error(
                    truth,
                    workload.evaluate(algorithm.run(
                        x, epsilon, workload=workload, rng=5000 + t)),
                    scale)
                for t in range(SELECTION_TRIALS)
            ]
            errors[name] = float(np.mean(trial_errors))
            rows.append({"algorithm": name, "scaled_error": errors[name]})
        for row in rows:
            row["vs_greedyw"] = row["scaled_error"] / errors["GreedyW"]
        return rows, (errors["Identity"] / errors["GreedyW"],
                      errors["GreedyH"] / errors["GreedyW"])

    rows, (vs_identity, vs_greedyh) = run_once(benchmark, study)
    report("bench_selection_quality",
           f"Workload-aware selection quality (domain {SELECTION_DOMAIN}, "
           f"skewed workload, eps=0.1, {SELECTION_TRIALS} trials)",
           format_table(rows, floatfmt="{:.4e}"))
    assert vs_identity > 1.05, \
        f"GreedyW only {vs_identity:.2f}x better than Identity on the skewed workload"
    assert vs_greedyh > 1.2, \
        f"GreedyW only {vs_greedyh:.2f}x better than GreedyH on the skewed workload"


SELECTION_2D_SIDE = 64
SELECTION_2D_TRIALS = 4 if SMOKE else 8


def test_greedyw_2d_selection_quality(benchmark):
    """Native 2-D workload-aware selection on the paper's 2-D benchmark
    workload: 2000 uniformly random range queries over a 64 x 64 grid.

    GreedyW's native path scores 2-D candidate hierarchies (pruned quadtrees
    and kd-style marginal grids) against the true rectangle workload; it must
    achieve lower scaled workload error than both the Hilbert-span variant it
    replaces (``native_2d=False`` — each rectangle blurred to the span of its
    curve positions) and GreedyH (Hilbert-flattened binary hierarchy, as the
    paper prescribes) at fixed epsilon.  Fixed-seed trials keep the gate
    deterministic.
    """
    from repro import make_algorithm, scaled_average_per_query_error
    from repro.workload.builders import random_range_workload

    def study():
        n = SELECTION_2D_SIDE
        workload = random_range_workload((n, n), 2000, rng=20160626)
        drng = np.random.default_rng(7)
        scale = 1_000_000
        x = drng.multinomial(scale, drng.dirichlet(np.ones(n * n))) \
            .astype(float).reshape(n, n)
        truth = workload.evaluate(x)

        epsilon = 0.1
        variants = {
            "GreedyW (native 2-D)": make_algorithm("GreedyW"),
            "GreedyW (Hilbert spans)": make_algorithm("GreedyW",
                                                      native_2d=False),
            "GreedyH (Hilbert)": make_algorithm("GreedyH"),
            "Identity": make_algorithm("Identity"),
        }
        rows, errors = [], {}
        for label, algorithm in variants.items():
            trial_errors = [
                scaled_average_per_query_error(
                    truth,
                    workload.evaluate(algorithm.run(
                        x, epsilon, workload=workload, rng=5000 + t)),
                    scale)
                for t in range(SELECTION_2D_TRIALS)
            ]
            errors[label] = float(np.mean(trial_errors))
            rows.append({"algorithm": label, "scaled_error": errors[label]})
        native = errors["GreedyW (native 2-D)"]
        for row in rows:
            row["vs_native"] = row["scaled_error"] / native
        return rows, (errors["GreedyW (Hilbert spans)"] / native,
                      errors["GreedyH (Hilbert)"] / native)

    rows, (vs_spans, vs_greedyh) = run_once(benchmark, study)
    report("bench_selection_quality_2d",
           f"Native 2-D selection quality ({SELECTION_2D_SIDE}x"
           f"{SELECTION_2D_SIDE}, 2000 random ranges, eps=0.1, "
           f"{SELECTION_2D_TRIALS} trials)",
           format_table(rows, floatfmt="{:.4e}"))
    assert vs_spans > 1.2, \
        f"native 2-D GreedyW only {vs_spans:.2f}x better than the Hilbert-span variant"
    assert vs_greedyh > 1.5, \
        f"native 2-D GreedyW only {vs_greedyh:.2f}x better than GreedyH"
