"""Table 1: algorithms evaluated in the benchmark and their properties.

Regenerates the property columns (dimensionality, hierarchical/partitioning
strategy, parameters, side information, consistency, scale-epsilon
exchangeability) from algorithm metadata, and backs the two analysis columns
with quick empirical spot-checks (a consistent and an inconsistent algorithm,
an exchangeable one).
"""

import numpy as np

from repro import check_consistency, check_exchangeability, make_algorithm, table1_rows
from repro.data import power_law_shape

from _shared import format_table, report, run_once


def build_table1():
    rows = []
    for row in table1_rows(include_extras=False):
        parameters = ", ".join(f"{k}={v}" for k, v in row["parameters"].items() if v is not None)
        rows.append({
            "algorithm": row["algorithm"],
            "class": "data-dependent" if row["data_dependent"] else "data-independent",
            "H": "x" if row["hierarchical"] else "",
            "P": "x" if row["partitioning"] else "",
            "dimension": row["dimension"],
            "parameters": parameters or "-",
            "free": ", ".join(row["free_parameters"]) or "-",
            "side_info": ", ".join(row["side_information"]) or "-",
            "consistent": "yes" if row["consistent"] else "no",
            "scale_exch": "yes" if row["scale_epsilon_exchangeable"] else "no",
        })
    return rows


def empirical_spot_checks():
    """Cheap empirical confirmation of the analysis columns."""
    rng = 0
    x = np.rint(power_law_shape(64, rng=rng) * 5000)
    checks = [
        ("Identity consistent", check_consistency(make_algorithm("Identity"), x, rng=rng)),
        ("PHP inconsistent", not check_consistency(make_algorithm("PHP"), x, rng=rng)),
        ("Uniform inconsistent", not check_consistency(make_algorithm("Uniform"), x, rng=rng)),
        ("Identity scale-eps exchangeable",
         check_exchangeability(make_algorithm("Identity"), power_law_shape(64, rng=rng),
                               n_trials=20, rng=rng)),
    ]
    return [{"check": name, "holds": bool(result)} for name, result in checks]


def test_table1_properties(benchmark):
    rows = run_once(benchmark, build_table1)
    text = format_table(rows)
    text += "\n\nEmpirical spot checks:\n" + format_table(empirical_spot_checks())
    report("table1_properties", "Table 1: algorithm properties", text)
    assert len(rows) == 18


if __name__ == "__main__":
    print(format_table(build_table1()))
    print(format_table(empirical_spot_checks()))
