"""Finding 8 (Section 7.4): measurement of variability.

Reports, per scale, how often the algorithm with the lowest mean error differs
from the algorithm with the lowest 95th-percentile error — the situations
where a risk-averse analyst would choose differently from a risk-neutral one —
plus the per-algorithm error variability (p95 / mean ratio).
"""

import numpy as np

from repro import mean_vs_p95_disagreements

from _shared import format_table, report, results_1d, results_2d, run_once


def build_disagreements():
    rows = []
    for task, results in (("1D", results_1d()), ("2D", results_2d())):
        for row in mean_vs_p95_disagreements(results):
            rows.append({"task": task, **row})
    return rows


def build_variability_profile():
    """Average p95/mean ratio per algorithm: how volatile is each algorithm?"""
    rows = []
    for task, results in (("1D", results_1d()), ("2D", results_2d())):
        for algorithm in results.successful().algorithms():
            ratios = []
            for record in results.successful().filter(algorithm=algorithm):
                summary = record.summary
                if summary.mean > 0:
                    ratios.append(summary.percentile95 / summary.mean)
            rows.append({
                "task": task,
                "algorithm": algorithm,
                "mean_p95_over_mean": float(np.mean(ratios)),
                "settings": len(ratios),
            })
    rows.sort(key=lambda r: (r["task"], -r["mean_p95_over_mean"]))
    return rows


def test_finding8_variability(benchmark):
    disagreements = run_once(benchmark, build_disagreements)
    profile = build_variability_profile()
    text = ("Settings where the best-by-mean algorithm is not best-by-p95 "
            f"(count = {len(disagreements)}):\n")
    text += format_table(disagreements) if disagreements else "(none in the reduced grid)"
    text += "\n\nPer-algorithm volatility (95th percentile / mean error):\n"
    text += format_table(profile, floatfmt="{:.2f}")
    report("finding8_variability", "Finding 8: risk-averse algorithm evaluation", text)
    assert profile


if __name__ == "__main__":
    print(format_table(build_disagreements()))
    print(format_table(build_variability_profile(), floatfmt="{:.2f}"))
